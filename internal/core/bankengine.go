package core

import (
	"fmt"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// BankEngine measures first-flip points by driving a simulated
// device.Bank activation by activation, exactly as the FPGA
// infrastructure drives a real chip. It is the ground-truth execution
// path; AnalyticEngine must (and is tested to) agree with it.
//
// The engine uses the bank's construction-time run seed for cell
// populations; RunOpts.Run is ignored here. Like the bank it drives, a
// BankEngine is not safe for concurrent use: its row-fill buffers and
// flip bookkeeping are reused across CharacterizeRow calls.
type BankEngine struct {
	bank *device.Bank

	// Per-row scratch, hoisted so repeated characterizations do not
	// allocate: the victim/aggressor fill buffers and the set of bits
	// already flipped before the experiment starts.
	victimBuf     []byte
	aggBuf        []byte
	flippedBefore device.Bitset
}

var _ Engine = (*BankEngine)(nil)

// NewBankEngine wraps a bank.
func NewBankEngine(b *device.Bank) *BankEngine {
	return &BankEngine{bank: b}
}

// CharacterizeRow implements Engine. It initializes the victim and
// aggressor rows with the data pattern, applies the access pattern
// iteration by iteration, and stops at the first observed bitflip or
// when the time budget is exhausted.
func (e *BankEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.bank.NumRows()); err != nil {
		return RowResult{}, err
	}
	res := RowResult{Victim: victim, Spec: spec, NoBitflip: true}

	e.bank.SetTemperature(opts.TempC)
	rowBytes := e.bank.RowBytes()
	e.victimBuf = device.FillRowInto(e.victimBuf, rowBytes, opts.Data.VictimByte())
	e.aggBuf = device.FillRowInto(e.aggBuf, rowBytes, opts.Data.AggressorByte())
	if err := e.bank.WriteRow(victim, e.victimBuf, 0); err != nil {
		return RowResult{}, fmt.Errorf("init victim: %w", err)
	}
	for _, off := range []int{-1, +1} {
		if err := e.bank.WriteRow(victim+off, e.aggBuf, 0); err != nil {
			return RowResult{}, fmt.Errorf("init aggressor: %w", err)
		}
	}

	acts := spec.Acts()
	maxIters := spec.MaxIterations(opts.Budget)
	cells := e.bank.VictimCells(victim)
	e.flippedBefore.Reset(rowBytes * 8)
	for i := range cells {
		if cells[i].Flipped() {
			e.flippedBefore.Set(cells[i].Bit)
		}
	}

	now := time.Duration(0)
	totalActs := int64(0)
	gen := e.bank.FlipGeneration()
	for iter := int64(1); iter <= maxIters; iter++ {
		for ai, a := range acts {
			row := victim + a.RowOffset
			if err := e.bank.Activate(row, now); err != nil {
				return RowResult{}, fmt.Errorf("iter %d act %d: %w", iter, ai, err)
			}
			now += a.OnTime
			if err := e.bank.Precharge(now); err != nil {
				return RowResult{}, fmt.Errorf("iter %d pre %d: %w", iter, ai, err)
			}
			totalActs++
			preAt := now
			now += spec.Timings.TRP

			// First-flip check after every precharge (damage is applied
			// at precharge time). The flip-generation counter makes the
			// common no-flip case one integer compare; the cell
			// population is only walked after a generation change (which
			// may also come from a flip in a non-victim row — the walk
			// then finds nothing and the hammering continues).
			if e.bank.FlipGeneration() == gen {
				continue
			}
			gen = e.bank.FlipGeneration()
			newFlip := false
			for i := range cells {
				if cells[i].Flipped() && !e.flippedBefore.Has(cells[i].Bit) {
					newFlip = true
					break
				}
			}
			if !newFlip {
				continue
			}
			flips, err := e.bank.CompareRow(victim, preAt)
			if err != nil {
				return RowResult{}, err
			}
			res.NoBitflip = false
			res.Iterations = iter
			res.ACmin = totalActs
			res.TimeToFirst = preAt
			res.Flips = flips
			return res, nil
		}
	}

	// Final readback, as the real methodology does at the end of every
	// experiment: any flips found here were not caused by the weak-cell
	// disturbance model — with a budget past tREFW they are retention
	// failures, which is exactly the contamination the paper's 60 ms
	// rule exists to exclude.
	flips, err := e.bank.CompareRow(victim, now)
	if err != nil {
		return RowResult{}, err
	}
	if len(flips) > 0 {
		res.NoBitflip = false
		res.Iterations = maxIters
		res.ACmin = totalActs
		res.TimeToFirst = now
		res.Flips = flips
	}
	return res, nil
}
