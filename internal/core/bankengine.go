package core

import (
	"fmt"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// aggressorOffsets are the victim-relative rows an experiment
// initializes, hoisted so CharacterizeRow does not allocate it per call.
var aggressorOffsets = [...]int{-1, +1}

// BankEngine measures first-flip points by driving a simulated
// device.Bank, observably exactly as the FPGA infrastructure drives a
// real chip. It is the ground-truth execution path; AnalyticEngine must
// (and is tested to) agree with it.
//
// By default the engine fast-forwards over the event horizon: the
// access pattern is periodic, so one captured device.DamageProfile
// determines every victim cell's bit-exact accumulator trajectory, the
// engine solves for the first iteration any cell can flip, jumps the
// bank state there in one step (device.Bank.SeekRowDisturb), and
// replays only a small guard window act by act to recover the exact
// flip activation, time and CompareRow readback. RowResults are
// byte-identical to full act-by-act execution (pinned by the
// fast-vs-exact grid and property tests); WithExactReplay opts out.
//
// The engine uses the bank's construction-time run seed for cell
// populations; RunOpts.Run is ignored here. Like the bank it drives, a
// BankEngine is not safe for concurrent use: its row-fill buffers and
// flip bookkeeping are reused across CharacterizeRow calls.
type BankEngine struct {
	bank *device.Bank

	// exact forces act-by-act execution from iteration 1.
	exact bool
	// drv, when set, receives every ACT/PRE/REF instead of the bank
	// (a mitigation guard, say); implies exact execution, since a
	// driver may mutate bank state the damage-profile solve cannot see.
	drv BankDriver
	// refEvery injects a REF through the driver whenever the hammer
	// clock passes the next multiple of it (0 = refresh disabled, the
	// paper's characterization methodology). Implies exact execution.
	refEvery  time.Duration
	refreshes int64

	// Per-row scratch, hoisted so repeated characterizations do not
	// allocate: the victim/aggressor fill buffers, the set of bits
	// already flipped before the experiment starts, the memoized act
	// schedule, and the fast-forward working state (see bankfast.go).
	victimBuf     []byte
	aggBuf        []byte
	flippedBefore device.Bitset
	actsSpec      pattern.Spec
	actsOK        bool
	acts          []pattern.Act
	prof          device.DamageProfile
	profActs      []device.ProfileAct
	accs          []float64
	bsolve        bankSolve
}

var _ Engine = (*BankEngine)(nil)

// BankEngineOption configures a BankEngine.
type BankEngineOption func(*BankEngine)

// BankDriver issues row commands on behalf of the engine's hammer
// loop. *device.Bank satisfies it (the default); a mitigation guard
// wraps one to observe activations and fire targeted refreshes, which
// is how a guarded bank rides the engine's loop instead of keeping a
// bespoke copy of it.
type BankDriver interface {
	Activate(row int, now time.Duration) error
	Precharge(now time.Duration) error
	Refresh(now time.Duration) error
}

var _ BankDriver = (*device.Bank)(nil)

// WithDriver routes the hammer loop's ACT/PRE (and any injected REF)
// through d instead of the bare bank. The fast-forward is disabled: a
// driver may mutate cell state (TRR refreshes victims) in ways the
// damage-profile solve cannot model, so execution must be act by act.
func WithDriver(d BankDriver) BankEngineOption {
	return func(e *BankEngine) { e.drv = d }
}

// WithRefreshEvery injects a REF through the driver every interval of
// hammering time, before the activation that first reaches it — the
// cadence mitigation evaluations hammer against. Zero disables refresh
// (the default, matching the paper's methodology). Implies exact
// execution like WithDriver.
func WithRefreshEvery(interval time.Duration) BankEngineOption {
	return func(e *BankEngine) { e.refEvery = interval }
}

// WithExactReplay disables the event-horizon fast-forward: every
// activation of every iteration is executed one by one. Results are
// byte-identical either way; exact replay is the bit-exact reference
// the fast path is validated against, and the mode to reach for when
// debugging the device model itself.
func WithExactReplay() BankEngineOption {
	return func(e *BankEngine) { e.exact = true }
}

// NewBankEngine wraps a bank.
func NewBankEngine(b *device.Bank, opts ...BankEngineOption) *BankEngine {
	e := &BankEngine{bank: b}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Refreshes returns how many periodic REFs WithRefreshEvery injected
// during the most recent CharacterizeRow call.
func (e *BankEngine) Refreshes() int64 { return e.refreshes }

// actsFor returns the memoized act schedule of spec (specs repeat
// across campaign loops; pattern.Spec.Acts allocates per call).
func (e *BankEngine) actsFor(spec pattern.Spec) []pattern.Act {
	if !e.actsOK || spec != e.actsSpec {
		e.acts = spec.Acts()
		e.actsSpec, e.actsOK = spec, true
	}
	return e.acts
}

// iterationTime mirrors pattern.Spec.IterationTime over a memoized act
// slice.
func iterationTime(acts []pattern.Act, trp time.Duration) time.Duration {
	var d time.Duration
	for _, a := range acts {
		d += a.OnTime + trp
	}
	return d
}

// CharacterizeRow implements Engine. It initializes the victim and
// aggressor rows with the data pattern, applies the access pattern —
// fast-forwarded to the flip horizon unless WithExactReplay — and stops
// at the first observed bitflip or when the time budget is exhausted.
func (e *BankEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.bank.NumRows()); err != nil {
		return RowResult{}, err
	}
	res := RowResult{Victim: victim, Spec: spec, NoBitflip: true}
	e.refreshes = 0

	e.bank.SetTemperature(opts.TempC)
	rowBytes := e.bank.RowBytes()
	e.victimBuf = device.FillRowInto(e.victimBuf, rowBytes, opts.Data.VictimByte())
	e.aggBuf = device.FillRowInto(e.aggBuf, rowBytes, opts.Data.AggressorByte())
	if err := e.bank.WriteRow(victim, e.victimBuf, 0); err != nil {
		return RowResult{}, fmt.Errorf("init victim: %w", err)
	}
	for _, off := range aggressorOffsets {
		if err := e.bank.WriteRow(victim+off, e.aggBuf, 0); err != nil {
			return RowResult{}, fmt.Errorf("init aggressor: %w", err)
		}
	}

	acts := e.actsFor(spec)
	var maxIters int64
	if it := iterationTime(acts, spec.Timings.TRP); it > 0 && opts.Budget > 0 {
		maxIters = int64(opts.Budget / it)
	}
	cells := e.bank.VictimCells(victim)
	e.flippedBefore.Reset(rowBytes * 8)
	for i := range cells {
		if cells[i].Flipped() {
			e.flippedBefore.Set(cells[i].Bit)
		}
	}

	if !e.exact && e.drv == nil && e.refEvery == 0 && len(acts) > 0 && maxIters > 0 {
		if done, err := e.fastForward(victim, spec, acts, maxIters, &res); done {
			if err != nil {
				return RowResult{}, err
			}
			return res, nil
		}
	}
	if err := e.hammer(victim, spec, acts, maxIters, 1, 0, 0, &res); err != nil {
		return RowResult{}, err
	}
	return res, nil
}

// hammer drives the bank act by act from startIter (1-based) with the
// given running clock and activation count, stopping at the first new
// victim-row bitflip, and performs the end-of-experiment readback when
// the iteration budget runs out — the shared back half of the exact and
// the fast-forward path.
func (e *BankEngine) hammer(victim int, spec pattern.Spec, acts []pattern.Act, maxIters, startIter int64, now time.Duration, totalActs int64, res *RowResult) error {
	cells := e.bank.VictimCells(victim)
	gen := e.bank.FlipGeneration()
	nextRef := e.refEvery
	for iter := startIter; iter <= maxIters; iter++ {
		for ai, a := range acts {
			if e.refEvery > 0 && now >= nextRef {
				refresh := e.bank.Refresh
				if e.drv != nil {
					refresh = e.drv.Refresh
				}
				if err := refresh(now); err != nil {
					return fmt.Errorf("iter %d ref: %w", iter, err)
				}
				e.refreshes++
				nextRef += e.refEvery
				// A REF may heal (or, through TRR, reset) victim cells;
				// resync the generation watermark so the flip scan below
				// still fires only on genuinely new flips.
				gen = e.bank.FlipGeneration()
			}
			row := victim + a.RowOffset
			var err error
			if e.drv != nil {
				err = e.drv.Activate(row, now)
			} else {
				err = e.bank.Activate(row, now)
			}
			if err != nil {
				return fmt.Errorf("iter %d act %d: %w", iter, ai, err)
			}
			now += a.OnTime
			if e.drv != nil {
				err = e.drv.Precharge(now)
			} else {
				err = e.bank.Precharge(now)
			}
			if err != nil {
				return fmt.Errorf("iter %d pre %d: %w", iter, ai, err)
			}
			totalActs++
			preAt := now
			now += spec.Timings.TRP

			// First-flip check after every precharge (damage is applied
			// at precharge time). The flip-generation counter makes the
			// common no-flip case one integer compare; the cell
			// population is only walked after a generation change (which
			// may also come from a flip in a non-victim row — the walk
			// then finds nothing and the hammering continues).
			if e.bank.FlipGeneration() == gen {
				continue
			}
			gen = e.bank.FlipGeneration()
			newFlip := false
			for i := range cells {
				if cells[i].Flipped() && !e.flippedBefore.Has(cells[i].Bit) {
					newFlip = true
					break
				}
			}
			if !newFlip {
				continue
			}
			flips, err := e.bank.CompareRow(victim, preAt)
			if err != nil {
				return err
			}
			res.NoBitflip = false
			res.Iterations = iter
			res.ACmin = totalActs
			res.TimeToFirst = preAt
			res.Flips = flips
			return nil
		}
	}

	// Final readback, as the real methodology does at the end of every
	// experiment: any flips found here were not caused by the weak-cell
	// disturbance model — with a budget past tREFW they are retention
	// failures, which is exactly the contamination the paper's 60 ms
	// rule exists to exclude.
	flips, err := e.bank.CompareRow(victim, now)
	if err != nil {
		return err
	}
	if len(flips) > 0 {
		res.NoBitflip = false
		res.Iterations = maxIters
		res.ACmin = totalActs
		res.TimeToFirst = now
		res.Flips = flips
	}
	return nil
}
