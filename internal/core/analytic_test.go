package core

import (
	"errors"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func testEngine(t *testing.T, moduleID string) *AnalyticEngine {
	t.Helper()
	mi, err := chipdb.ByID(moduleID)
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	e, err := NewAnalyticEngine(AnalyticConfig{
		Profile: mi.Profile(params),
		Params:  params,
		NumRows: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testSpec(t *testing.T, k pattern.Kind, aggOn time.Duration) pattern.Spec {
	t.Helper()
	s, err := pattern.New(k, aggOn, timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyticEngineValidation(t *testing.T) {
	if _, err := NewAnalyticEngine(AnalyticConfig{Params: device.DefaultParams()}); err == nil {
		t.Error("accepted empty profile")
	}
}

func TestVictimRangeChecks(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.Combined, timing.TRAS)
	for _, victim := range []int{0, -5, 8191, 9000} {
		if _, err := e.CharacterizeRow(victim, spec, RunOpts{}); !errors.Is(err, ErrVictimOutOfRange) {
			t.Errorf("victim %d: err = %v, want ErrVictimOutOfRange", victim, err)
		}
	}
	if _, err := e.CharacterizeRow(1, spec, RunOpts{}); err != nil {
		t.Errorf("victim 1 should be legal: %v", err)
	}
}

func TestCharacterizeRowBasics(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	res, err := e.CharacterizeRow(1000, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoBitflip {
		t.Fatal("RowHammer on S0 must flip within 60ms")
	}
	if res.ACmin <= 0 || res.Iterations <= 0 || res.TimeToFirst <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.ACmin > 2*res.Iterations {
		t.Errorf("ACmin %d exceeds 2x iterations %d", res.ACmin, res.Iterations)
	}
	if len(res.Flips) == 0 {
		t.Error("flip reported but no flip records")
	}
	for _, f := range res.Flips {
		if f.Row != 1000 {
			t.Errorf("flip in row %d, want 1000", f.Row)
		}
	}
	// Deterministic.
	res2, err := e.CharacterizeRow(1000, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ACmin != res.ACmin || res2.TimeToFirst != res.TimeToFirst {
		t.Error("repeat measurement with same run seed differs")
	}
}

func TestBudgetEnforcement(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	full, err := e.CharacterizeRow(1000, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// A budget below the measured first-flip time must yield NoBitflip.
	tight, err := e.CharacterizeRow(1000, spec, RunOpts{Budget: full.TimeToFirst / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !tight.NoBitflip {
		t.Error("flip reported past the budget")
	}
	// A budget just above must still flip.
	loose, err := e.CharacterizeRow(1000, spec, RunOpts{Budget: full.TimeToFirst * 2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NoBitflip {
		t.Error("flip lost with a sufficient budget")
	}
}

func TestPressImmuneModuleNoBitflip(t *testing.T) {
	e := testEngine(t, "M1")
	for _, aggOn := range []time.Duration{timing.AggOnTREFI, timing.AggOnNineTREFI, timing.AggOnMax} {
		for _, kind := range []pattern.Kind{pattern.DoubleSided, pattern.Combined, pattern.SingleSided} {
			res, err := e.CharacterizeRow(2000, testSpec(t, kind, aggOn), RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.NoBitflip {
				t.Errorf("M1 %s@%v flipped (ACmin %d); the paper reports No Bitflip", kind.Short(), aggOn, res.ACmin)
			}
		}
	}
	// But RowHammer at minimal on-time still flips M1.
	res, err := e.CharacterizeRow(2000, testSpec(t, pattern.DoubleSided, timing.TRAS), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoBitflip {
		t.Error("M1 must still be RowHammer-vulnerable")
	}
}

func TestDataPatternChangesOutcome(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	var results []RowResult
	for _, dp := range []device.DataPattern{device.Checkerboard, device.AllOnes, device.AllZeros} {
		res, err := e.CharacterizeRow(1500, spec, RunOpts{Data: dp})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	// All-ones permits only 1->0 flips; all-zeros only 0->1.
	for _, f := range results[1].Flips {
		if f.Dir != device.OneToZero {
			t.Errorf("all-ones victim flipped %v", f.Dir)
		}
	}
	for _, f := range results[2].Flips {
		if f.Dir != device.ZeroToOne {
			t.Errorf("all-zeros victim flipped %v", f.Dir)
		}
	}
}

func TestRunNoisePerturbsACmin(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	base, err := e.CharacterizeRow(1200, spec, RunOpts{Run: 0})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := e.CharacterizeRow(1200, spec, RunOpts{Run: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.ACmin == noisy.ACmin {
		t.Error("run noise did not perturb ACmin")
	}
	ratio := float64(noisy.ACmin) / float64(base.ACmin)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("run-to-run ratio %g exceeds the 3%% noise model", ratio)
	}
}

func TestTemperatureAcceleratesFlips(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	cold, err := e.CharacterizeRow(1300, spec, RunOpts{TempC: 50})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := e.CharacterizeRow(1300, spec, RunOpts{TempC: 85})
	if err != nil {
		t.Fatal(err)
	}
	if hot.ACmin >= cold.ACmin {
		t.Errorf("85C ACmin %d >= 50C ACmin %d", hot.ACmin, cold.ACmin)
	}
}

func TestPaperRows(t *testing.T) {
	rows := PaperRows(65536, 1000)
	if len(rows) != 3000 {
		t.Fatalf("got %d rows, want 3000", len(rows))
	}
	seen := make(map[int]bool)
	for _, r := range rows {
		if r < 1 || r > 65534 {
			t.Errorf("victim %d out of safe range", r)
		}
		if seen[r] {
			t.Errorf("duplicate victim %d", r)
		}
		seen[r] = true
	}
	// The three regions are represented.
	if rows[0] != 1 {
		t.Errorf("first region starts at %d, want 1", rows[0])
	}
	if rows[len(rows)-1] != 65534 {
		t.Errorf("last region ends at %d, want 65534", rows[len(rows)-1])
	}
	if PaperRows(65536, 0) != nil || PaperRows(4, 10) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

// TestCharacterizeRowSteadyStateAllocs is the hot-path allocation
// guard: once the engine's caches are warm (terms memoized, base
// population cached, scratch and result buffers grown), characterizing
// a row must not allocate — across repeats of one row, across run-noise
// seeds, and across rows served by a warm shared PopCache.
func TestCharacterizeRowSteadyStateAllocs(t *testing.T) {
	mi, err := chipdb.ByID("S0")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	cache := device.NewPopulationCache(profile, params, 0, 1024*8)
	e, err := NewAnalyticEngine(AnalyticConfig{
		Profile:  profile,
		Params:   params,
		NumRows:  8192,
		PopCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, pattern.Combined, 636*time.Nanosecond)
	victims := []int{1000, 1001, 1002, 1003}
	var res RowResult
	warm := func() {
		for _, v := range victims {
			for run := int64(0); run < 3; run++ {
				if err := e.CharacterizeRowInto(v, spec, RunOpts{Run: run}, &res); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	warm() // populate every cache
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("steady-state CharacterizeRowInto allocates %v times per sweep, want 0", allocs)
	}
	if !res.NoBitflip && len(res.Flips) == 0 {
		t.Error("warm path lost the flip records")
	}
}

// TestCharacterizeRowIntoMatchesCharacterizeRow pins the reuse API to
// the allocating one, including across cache-state transitions.
func TestCharacterizeRowIntoMatchesCharacterizeRow(t *testing.T) {
	e := testEngine(t, "S0")
	fresh := testEngine(t, "S0")
	var res RowResult
	for _, kind := range []pattern.Kind{pattern.DoubleSided, pattern.Combined} {
		spec := testSpec(t, kind, 636*time.Nanosecond)
		for victim := 990; victim < 1010; victim++ {
			for run := int64(0); run < 2; run++ {
				if err := e.CharacterizeRowInto(victim, spec, RunOpts{Run: run}, &res); err != nil {
					t.Fatal(err)
				}
				want, err := fresh.CharacterizeRow(victim, spec, RunOpts{Run: run})
				if err != nil {
					t.Fatal(err)
				}
				if res.NoBitflip != want.NoBitflip || res.ACmin != want.ACmin ||
					res.TimeToFirst != want.TimeToFirst || res.Iterations != want.Iterations ||
					len(res.Flips) != len(want.Flips) {
					t.Fatalf("victim %d run %d: Into %+v != CharacterizeRow %+v", victim, run, res, want)
				}
				for i := range want.Flips {
					if res.Flips[i] != want.Flips[i] {
						t.Fatalf("victim %d run %d flip %d differs", victim, run, i)
					}
				}
			}
		}
	}
}

// TestSharedPopCacheMatchesPrivate verifies that engines sharing a
// PopulationCache measure exactly what an engine with private
// generation measures.
func TestSharedPopCacheMatchesPrivate(t *testing.T) {
	mi, err := chipdb.ByID("H0")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	cache := device.NewPopulationCache(profile, params, 0, 1024*8)
	shared, err := NewAnalyticEngine(AnalyticConfig{Profile: profile, Params: params, NumRows: 8192, PopCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	private := testEngine(t, "H0")
	spec := testSpec(t, pattern.SingleSided, timing.AggOnTREFI)
	for victim := 500; victim < 520; victim++ {
		a, err := shared.CharacterizeRow(victim, spec, RunOpts{Run: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := private.CharacterizeRow(victim, spec, RunOpts{Run: 2})
		if err != nil {
			t.Fatal(err)
		}
		if a.NoBitflip != b.NoBitflip || a.ACmin != b.ACmin || a.TimeToFirst != b.TimeToFirst {
			t.Fatalf("victim %d: shared-cache result %+v != private %+v", victim, a, b)
		}
	}
	if cache.Len() == 0 {
		t.Error("shared cache was never populated")
	}
	// A cache built for a different die must be rejected.
	if _, err := NewAnalyticEngine(AnalyticConfig{
		Profile: device.DieProfile(profile, 1), Params: params, NumRows: 8192, PopCache: cache,
	}); err == nil {
		t.Error("engine accepted a PopCache built for a different die")
	}
}

func TestACminParityWithinIteration(t *testing.T) {
	// For two-activation patterns, ACmin can be odd when the flip lands
	// on the first activation of the final iteration; the relation
	// ACmin = 2*(iters-1) + 1 or 2*iters must always hold.
	e := testEngine(t, "S0")
	for _, aggOn := range []time.Duration{timing.TRAS, timing.AggOnTREFI} {
		spec := testSpec(t, pattern.Combined, aggOn)
		for victim := 100; victim < 130; victim++ {
			res, err := e.CharacterizeRow(victim, spec, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if res.NoBitflip {
				continue
			}
			lo := 2 * (res.Iterations - 1)
			if res.ACmin != lo+1 && res.ACmin != lo+2 {
				t.Errorf("victim %d: ACmin %d inconsistent with %d iterations", victim, res.ACmin, res.Iterations)
			}
		}
	}
}
