// Extractors for scenario-axis campaigns: the mitigation survival
// summary (flip survival vs TRR variant, ECC and refresh multiplier)
// and the combined-attack crossover sweep, the in-campaign promotion of
// what examples/combined_attack used to compute ad hoc. Both read the
// study's completed cells the way Table2/Fig4 do, so they render from
// live campaigns, resumed checkpoints and merged shards alike.
package core

import (
	"fmt"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/pattern"
)

// MitigationModuleStat is one module's survival accounting under one
// scenario, folded across every (pattern, tAggON) cell of the grid.
type MitigationModuleStat struct {
	Module string
	// FlippedObs / TotalObs count row observations: an observation
	// survives when no bitflip escaped the scenario's mitigations
	// within the budget.
	FlippedObs int
	TotalObs   int
	// FastestMs is the smallest per-cell mean time-to-first-bitflip
	// (milliseconds) among the module's flipped cells; zero when every
	// cell survived.
	FastestMs float64
}

// Survived is the fraction of observations without a surviving flip.
func (m MitigationModuleStat) Survived() float64 {
	if m.TotalObs == 0 {
		return 1
	}
	return 1 - float64(m.FlippedObs)/float64(m.TotalObs)
}

// MitigationRow is one scenario of the mitigation table: the
// configuration under test and the per-module survival it achieved.
type MitigationRow struct {
	Scenario Scenario
	// Modules follows the study's module order.
	Modules []MitigationModuleStat
}

// MitigationSummary folds every completed cell into per-(scenario,
// module) survival rows, in the configured scenario order. Every cell
// of the grid must have results (run the campaign, or seed it from a
// checkpoint, first).
func (s *Study) MitigationSummary() ([]MitigationRow, error) {
	sweep := s.SweepSorted()
	rows := make([]MitigationRow, 0, len(s.cfg.scenarios()))
	for _, sc := range s.cfg.scenarios() {
		row := MitigationRow{Scenario: sc, Modules: make([]MitigationModuleStat, 0, len(s.cfg.Modules))}
		for _, mi := range s.cfg.Modules {
			stat := MitigationModuleStat{Module: mi.ID}
			for _, kind := range s.cfg.Patterns {
				for _, aggOn := range sweep {
					key := CellKey{Module: mi.ID, Kind: kind, AggOn: aggOn, Scenario: sc.ID}
					r, ok := s.ResultCell(key)
					if !ok {
						return nil, fmt.Errorf("core: study has no result for cell %v", key)
					}
					ts := r.TimeStats()
					stat.FlippedObs += ts.N
					stat.TotalObs += ts.Total
					if ts.N > 0 {
						ms := ts.Mean * 1000
						if stat.FastestMs == 0 || ms < stat.FastestMs {
							stat.FastestMs = ms
						}
					}
				}
			}
			row.Modules = append(row.Modules, stat)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ThermalModuleStat is one module's disturbance summary at one thermal
// operating point, folded across every (pattern, tAggON) cell.
type ThermalModuleStat struct {
	Module string
	// ACminMean is the observation-weighted mean ACmin across the
	// module's flipped observations (0 when nothing flipped).
	ACminMean float64
	// FlippedObs / TotalObs count row observations with/without flips.
	FlippedObs int
	TotalObs   int
	// FastestMs is the smallest per-cell mean time-to-first-bitflip in
	// milliseconds (0 when every cell survived).
	FastestMs float64
}

// ThermalRow is one scenario (operating point) of the thermal table.
type ThermalRow struct {
	Scenario Scenario
	// SettledC is the effective die temperature of the scenario's
	// cells: the heater-pad controller's settled plant temperature for
	// thermal scenarios, the resolved TempC override otherwise.
	SettledC float64
	// Modules follows the study's module order.
	Modules []ThermalModuleStat
}

// ThermalSummary folds every completed cell into per-(scenario,
// module) thermal rows, in the configured scenario order — the
// extractor behind report.ThermalTable for `-scenarios thermal:...`
// campaigns. Every cell of the grid must have results.
func (s *Study) ThermalSummary() ([]ThermalRow, error) {
	sweep := s.SweepSorted()
	rows := make([]ThermalRow, 0, len(s.cfg.scenarios()))
	for _, sc := range s.cfg.scenarios() {
		opts, err := sc.resolveOpts(s.cfg.Opts)
		if err != nil {
			return nil, err
		}
		row := ThermalRow{Scenario: sc, SettledC: opts.TempC, Modules: make([]ThermalModuleStat, 0, len(s.cfg.Modules))}
		for _, mi := range s.cfg.Modules {
			stat := ThermalModuleStat{Module: mi.ID}
			var acSum float64
			for _, kind := range s.cfg.Patterns {
				for _, aggOn := range sweep {
					key := CellKey{Module: mi.ID, Kind: kind, AggOn: aggOn, Scenario: sc.ID}
					r, ok := s.ResultCell(key)
					if !ok {
						return nil, fmt.Errorf("core: study has no result for cell %v", key)
					}
					ac := r.ACminStats()
					stat.FlippedObs += ac.N
					stat.TotalObs += ac.Total
					acSum += ac.Mean * float64(ac.N)
					if ts := r.TimeStats(); ts.N > 0 {
						ms := ts.Mean * 1000
						if stat.FastestMs == 0 || ms < stat.FastestMs {
							stat.FastestMs = ms
						}
					}
				}
			}
			if stat.FlippedObs > 0 {
				stat.ACminMean = acSum / float64(stat.FlippedObs)
			}
			row.Modules = append(row.Modules, stat)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CrossoverCell is one tAggON position of one module's crossover sweep.
type CrossoverCell struct {
	AggOn time.Duration
	// TimesMs maps each pattern to its mean time-to-first-bitflip in
	// milliseconds; patterns that never flipped at this tAggON are
	// absent.
	TimesMs map[pattern.Kind]float64
	// Winner is the fastest flipping pattern (zero when nothing flips).
	Winner pattern.Kind
}

// CrossoverModule is one module's sweep: which pattern family wins at
// each tAggON, and where the winner changes hands (the paper's
// Observations 1 and 3 — the combined pattern dominates small-to-medium
// on-times and converges to single-sided RowPress at large ones).
type CrossoverModule struct {
	Info chipdb.ModuleInfo
	// Cells covers the sweep in ascending tAggON order.
	Cells []CrossoverCell
	// Crossover brackets the first winner change; valid only when
	// HasCrossover is set (a module one pattern dominates throughout
	// has none).
	Crossover    CrossoverPoint
	HasCrossover bool
}

// CrossoverSweep extracts the per-module crossover structure from the
// study's primary scenario: every configured pattern's mean
// time-to-first-bitflip at every sweep point, the per-point winner, and
// the bracket where the winner first changes. Every cell must have
// results.
func (s *Study) CrossoverSweep() ([]CrossoverModule, error) {
	sweep := s.SweepSorted()
	out := make([]CrossoverModule, 0, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		cm := CrossoverModule{Info: mi, Cells: make([]CrossoverCell, 0, len(sweep))}
		for _, aggOn := range sweep {
			cell := CrossoverCell{AggOn: aggOn, TimesMs: make(map[pattern.Kind]float64, len(s.cfg.Patterns))}
			for _, kind := range s.cfg.Patterns {
				r, err := s.mustResult(mi.ID, kind, aggOn)
				if err != nil {
					return nil, err
				}
				if ts := r.TimeStats(); ts.N > 0 {
					ms := ts.Mean * 1000
					cell.TimesMs[kind] = ms
					if cell.Winner == 0 || ms < cell.TimesMs[cell.Winner] {
						cell.Winner = kind
					}
				}
			}
			cm.Cells = append(cm.Cells, cell)
		}
		cm.Crossover, cm.HasCrossover = crossoverBracket(cm.Cells)
		out = append(out, cm)
	}
	return out, nil
}

// crossoverBracket finds the first adjacent pair of sweep points whose
// winners differ — the same bracket semantics as FindCrossover, read
// off campaign cells instead of a fresh engine scan.
func crossoverBracket(cells []CrossoverCell) (CrossoverPoint, bool) {
	var prev CrossoverCell
	havePrev := false
	for _, c := range cells {
		if c.Winner == 0 {
			havePrev = false
			continue
		}
		if havePrev && c.Winner != prev.Winner {
			return CrossoverPoint{Below: prev.AggOn, Above: c.AggOn}, true
		}
		prev, havePrev = c, true
	}
	return CrossoverPoint{}, false
}
