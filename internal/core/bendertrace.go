// The bender-trace scenario engine: characterization cells executed as
// DRAM Bender programs on the cycle-accurate interpreter instead of
// direct bank calls.
//
// Each cell's access pattern is compiled to the canonical Bender
// characterization program (bender.CompileCharacterization) and run on
// the instruction interpreter, which observes per-instruction TCK
// costs the direct bank path never sees. Naive replay executes the
// hammer loop activation by activation; the default fast path
// recognizes the loop (bender.FindHammerLoop), captures one
// iteration's device.DamageProfile, solves the event horizon with the
// same binade-stepping machinery as the bank engine's fast-forward
// (solveFlipHorizon / seekAccsAt), jumps the bank and the interpreter
// clock past the iterations that cannot flip anything, and resumes the
// interpreter with the loop register rewritten to the remaining count.
// Results are byte-identical between the two modes (pinned by
// TestTraceEngineFastMatchesExact); the fast path is where the >= 10x
// of BENCH_8.json comes from.
//
// Row initialization uses the bank's infrastructure write path
// (device.Bank.WriteRow — documented as ACT + full-row WR + PRE without
// disturbance side effects), as the real platform's memory controller
// initializes rows before handing the kernel to Bender; interpretation
// starts at the hammer kernel's SET. Interpreting the WriteRow prologue
// instead would warm the victim row's side bookkeeping and break the
// clean-state precondition of damage-profile capture.
package core

import (
	"fmt"
	"time"

	"rowfuse/internal/bender"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// traceEngine runs characterization cells through the bender
// interpreter. Like the bank engine it wraps per-run device state and
// reuses scratch buffers, so it is not safe for concurrent use.
type traceEngine struct {
	bank    *device.Bank
	bankIdx int
	eng     *bender.Engine
	timings timing.Set
	burst   int
	exact   bool

	numRows  int
	rowBytes int

	// Per-row scratch (see BankEngine).
	victimBuf []byte
	aggBuf    []byte
	prof      device.DamageProfile
	profActs  []device.ProfileAct
	accs      []float64
	bsolve    bankSolve
}

var _ Engine = (*traceEngine)(nil)

// newTraceEngineFor builds the bender-trace engine of a scenario cell:
// a fresh chip for the (die, run) environment and an interpreter over
// it. The chip derives its own die serial from the environment profile,
// so the trace engine's weak-cell population is its own deterministic
// realization (trace results are validated fast-vs-exact, not against
// the direct bank engine).
func newTraceEngineFor(env EngineEnv, sc Scenario) (Engine, error) {
	var ts TraceSpec
	if sc.Trace != nil {
		ts = *sc.Trace
	}
	burst := ts.Burst
	if burst == 0 {
		burst = 8
	}
	chip, err := device.NewChip(device.ChipConfig{
		Profile: env.Profile,
		Params:  env.Params,
		// Only the bank under test is driven; don't carry 15 idle banks.
		NumBanks: env.Bank + 1,
		NumRows:  env.NumRows,
		RowBytes: env.RowBytes,
		RunSeed:  env.Run,
	})
	if err != nil {
		return nil, err
	}
	bank, err := chip.Bank(env.Bank)
	if err != nil {
		return nil, err
	}
	eng, err := bender.NewEngine(bender.EngineConfig{Chip: chip, Timings: env.Timings, Burst: burst})
	if err != nil {
		return nil, err
	}
	return &traceEngine{
		bank:     bank,
		bankIdx:  env.Bank,
		eng:      eng,
		timings:  env.Timings,
		burst:    burst,
		exact:    ts.Exact,
		numRows:  env.NumRows,
		rowBytes: env.RowBytes,
	}, nil
}

// CharacterizeRow implements Engine: compile the cell's pattern to a
// characterization program, execute it on the interpreter (fast-
// forwarded over the flip horizon unless TraceSpec.Exact), and stop at
// the first observed bitflip or the end of the program.
func (e *traceEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		return RowResult{}, err
	}
	res := RowResult{Victim: victim, Spec: spec, NoBitflip: true}

	e.bank.SetTemperature(opts.TempC)
	e.victimBuf = device.FillRowInto(e.victimBuf, e.rowBytes, opts.Data.VictimByte())
	e.aggBuf = device.FillRowInto(e.aggBuf, e.rowBytes, opts.Data.AggressorByte())
	if err := e.bank.WriteRow(victim, e.victimBuf, 0); err != nil {
		return RowResult{}, fmt.Errorf("init victim: %w", err)
	}
	for _, off := range aggressorOffsets {
		if err := e.bank.WriteRow(victim+off, e.aggBuf, 0); err != nil {
			return RowResult{}, fmt.Errorf("init aggressor: %w", err)
		}
	}

	// The iteration budget under the interpreter's clock model, which
	// charges a TCK per instruction on top of the pattern's waits:
	// probe a single iteration and divide.
	probe, err := bender.CompilePattern(spec, e.bankIdx, victim, 1, e.burst)
	if err != nil {
		return RowResult{}, err
	}
	ploop, ok := bender.FindHammerLoop(probe, e.timings)
	if !ok {
		return RowResult{}, fmt.Errorf("core: pattern %v did not compile to a recognizable hammer loop", spec.Kind)
	}
	maxIters := int64(1)
	if ploop.IterTime > 0 && opts.Budget > 0 {
		if n := int64(opts.Budget / ploop.IterTime); n > 0 {
			maxIters = n
		}
	}

	prog, err := bender.CompileCharacterization(spec, e.bankIdx, victim, e.rowBytes,
		opts.Data.AggressorByte(), opts.Data.VictimByte(), maxIters, e.burst)
	if err != nil {
		return RowResult{}, err
	}
	loop, ok := bender.FindHammerLoop(prog, e.timings)
	if !ok {
		return RowResult{}, fmt.Errorf("core: pattern %v characterization has no recognizable hammer loop", spec.Kind)
	}

	e.eng.Reset()
	if err := e.eng.WatchFlips(e.bankIdx, victim); err != nil {
		return RowResult{}, err
	}

	nActs := int64(len(loop.Acts))
	var skipped int64
	resumePC := loop.SetPC
	if !e.exact {
		skipped = e.planJump(victim, loop, maxIters)
	}
	if skipped > 0 {
		// Account for the SET the interpreter will not execute and the
		// skipped iterations, then resume inside the loop with the
		// counter rewritten to the remaining iterations (or straight at
		// the readback epilogue when the whole loop was solved away).
		e.eng.AdvanceClock(e.timings.TCK + time.Duration(skipped)*loop.IterTime)
		if remaining := maxIters - skipped; remaining > 0 {
			if err := e.eng.SetReg(loop.Reg, remaining); err != nil {
				return RowResult{}, err
			}
			resumePC = loop.Body
		} else {
			resumePC = loop.Djnz + 1
		}
	}
	actsBase := e.eng.CommandCount(bender.OpAct)
	if err := e.eng.RunFrom(prog, resumePC); err != nil {
		return RowResult{}, err
	}

	if at, halted := e.eng.FlipHalt(); halted {
		// The watch can only trip inside the hammer loop (the epilogue
		// activates the victim itself, which disturbs neighbours, not
		// the watched row), so every ACT since resume is a loop ACT.
		actsWindow := e.eng.CommandCount(bender.OpAct) - actsBase
		flips, err := e.bank.CompareRow(victim, at)
		if err != nil {
			return RowResult{}, err
		}
		res.NoBitflip = false
		res.Iterations = skipped + (actsWindow-1)/nActs + 1
		res.ACmin = skipped*nActs + actsWindow
		res.TimeToFirst = at
		res.Flips = flips
		return res, nil
	}

	// The program ran to completion, readback epilogue included: the
	// end-of-experiment comparison, as in the bank engine.
	flips, err := e.bank.CompareRow(victim, e.eng.Now())
	if err != nil {
		return RowResult{}, err
	}
	if len(flips) > 0 {
		res.NoBitflip = false
		res.Iterations = maxIters
		res.ACmin = maxIters * nActs
		res.TimeToFirst = e.eng.Now()
		res.Flips = flips
	}
	return res, nil
}

// planJump captures the loop's damage profile, solves the flip
// horizon, and — when the horizon is far enough to be worth it — seeks
// the bank to guardIters iterations before it, returning how many
// iterations were skipped. 0 means the interpreter must run the loop
// from the start (unprofilable row, horizon too close, or seek
// refused); the bank is untouched in that case.
func (e *traceEngine) planJump(victim int, loop *bender.HammerLoop, maxIters int64) int64 {
	e.profActs = e.profActs[:0]
	for _, a := range loop.Acts {
		e.profActs = append(e.profActs, device.ProfileAct{
			RowOffset: a.Row - victim,
			OnTime:    a.PreAt - a.ActAt,
			Start:     a.ActAt,
		})
	}
	if err := e.bank.FillDamageProfile(&e.prof, victim, e.profActs, loop.IterTime); err != nil {
		return 0
	}
	horizon, fast := solveFlipHorizon(&e.prof, &e.bsolve, maxIters)
	startIter := horizon - guardIters
	if horizon > maxIters {
		startIter = maxIters + 1
	}
	if startIter < 2 {
		return 0
	}
	skipped := startIter - 1
	e.accs = seekAccsAt(&e.prof, &e.bsolve, fast, skipped, e.accs)
	strong, weak := e.prof.SideSeekAt(skipped, loop.IterTime)
	// The interpreter's loop runs one TCK late relative to the profile
	// frame (the SET executes before iteration 1 starts); shift the
	// seeked side timestamps into the interpreter frame so interleave
	// ordering against guard-window activations stays consistent.
	if strong.HasLast {
		strong.LastActStart += e.timings.TCK
	}
	if weak.HasLast {
		weak.LastActStart += e.timings.TCK
	}
	if err := e.bank.SeekRowDisturb(victim, e.accs, strong, weak, skipped*int64(len(loop.Acts))); err != nil {
		return 0
	}
	return skipped
}
