package core

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/timing"
)

// CampaignSpecBuilder is the canonical flag-to-config assembly shared
// by cmd/characterize and cmd/campaignd. Both commands must build the
// result-determining fields — module set, sweep, scenario axis, scale,
// operating point — identically, because the config fingerprint is what
// lets a campaignd-coordinated campaign be rendered later with
// `characterize -merge` under the same flags. That assembly therefore
// lives in exactly one place: either binary binds the shared flags with
// BindCampaignFlags (or sets the fields through options) and calls
// StudyConfig. Execution details (concurrency, progress, shard,
// checkpoint cadence) are set by each caller; they are excluded from
// the fingerprint.
type CampaignSpecBuilder struct {
	// Exp selects the campaign grid. "table2", "mitigation", "bender"
	// and "fleet" narrow the sweep to the three Table 2 marks;
	// everything else runs the paper sweep. "fleet" additionally swaps
	// the Table 1 module inventory for Chips synthetic chips.
	Exp string
	// Module restricts the campaign to one module ID ("" = the whole
	// Table 1 inventory).
	Module string
	// Rows, Dies and Runs set the campaign scale.
	Rows, Dies, Runs int
	// Chips sets the synthetic-fleet size; it only takes effect with
	// Exp == "fleet", which swaps the module inventory for generated
	// chip blocks.
	Chips int
	// Temp and Budget set the operating point.
	Temp   float64
	Budget time.Duration
	// ScenarioSet names the scenario axis ("" picks a default from
	// Exp); see ParseScenarioSet for the accepted names.
	ScenarioSet string
}

// CampaignOption adjusts a builder (the programmatic alternative to
// flag binding, used by tests and embedding callers).
type CampaignOption func(*CampaignSpecBuilder)

// WithExp selects the experiment grid.
func WithExp(exp string) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.Exp = exp }
}

// WithModule restricts the campaign to one module.
func WithModule(id string) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.Module = id }
}

// WithScale sets rows per region, dies per module and runs.
func WithScale(rows, dies, runs int) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.Rows, b.Dies, b.Runs = rows, dies, runs }
}

// WithOperatingPoint sets the die temperature and time budget.
func WithOperatingPoint(temp float64, budget time.Duration) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.Temp, b.Budget = temp, budget }
}

// WithScenarioSet names the scenario axis.
func WithScenarioSet(set string) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.ScenarioSet = set }
}

// WithChips sets the synthetic-fleet size (effective with
// WithExp("fleet")).
func WithChips(n int) CampaignOption {
	return func(b *CampaignSpecBuilder) { b.Chips = n }
}

// NewCampaignSpecBuilder returns a builder with the shared flag
// defaults applied, then opts.
func NewCampaignSpecBuilder(opts ...CampaignOption) *CampaignSpecBuilder {
	b := &CampaignSpecBuilder{
		Exp:    "all",
		Rows:   200,
		Dies:   1,
		Runs:   3,
		Temp:   50,
		Budget: DefaultBudget,
		Chips:  100000,
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// BindCampaignFlags declares the shared campaign flags on fs and
// returns the builder they populate; read it after fs.Parse. Flag
// names, defaults and semantics are identical in every binary that
// binds them — that is the point.
func BindCampaignFlags(fs *flag.FlagSet) *CampaignSpecBuilder {
	b := NewCampaignSpecBuilder()
	fs.StringVar(&b.Exp, "exp", b.Exp, "experiment grid (table2/mitigation/bender/fleet narrow the sweep to the Table 2 marks)")
	fs.IntVar(&b.Rows, "rows", b.Rows, "victim rows per bank region (paper: 1000)")
	fs.IntVar(&b.Dies, "dies", b.Dies, "dies per module to characterize (0 = all, as in the paper)")
	fs.IntVar(&b.Runs, "runs", b.Runs, "repeats per measurement (paper: 3)")
	fs.StringVar(&b.Module, "module", b.Module, "restrict to one module ID (e.g. S0)")
	fs.IntVar(&b.Chips, "chips", b.Chips, "fleet size for -exp fleet (synthetic chips drawn from the population model)")
	fs.Float64Var(&b.Temp, "temp", b.Temp, "die temperature in Celsius (paper: 50)")
	fs.DurationVar(&b.Budget, "budget", b.Budget, "per-experiment time budget (paper: 60ms)")
	fs.StringVar(&b.ScenarioSet, "scenarios", b.ScenarioSet,
		"scenario axis: default, mitigations, bender, bank, or thermal:T1,T2,... (empty picks a default from -exp)")
	return b
}

// scenarioSet resolves the effective scenario-set name: an explicit
// -scenarios wins, otherwise the experiment implies one (mitigation
// campaigns hammer the mitigation grid, bender campaigns the trace
// engine, everything else the default single-scenario axis).
func (b *CampaignSpecBuilder) scenarioSet() string {
	if b.ScenarioSet != "" {
		return b.ScenarioSet
	}
	switch b.Exp {
	case "mitigation":
		return "mitigations"
	case "bender":
		return "bender"
	}
	return "default"
}

// StudyConfig assembles the campaign configuration. Every
// result-determining field is set here and only here; callers add
// execution details afterwards.
func (b *CampaignSpecBuilder) StudyConfig() (StudyConfig, error) {
	mods := chipdb.Modules()
	if b.Module != "" {
		mi, err := chipdb.ByID(b.Module)
		if err != nil {
			return StudyConfig{}, err
		}
		mods = []chipdb.ModuleInfo{mi}
	}
	sweep := timing.PaperSweep()
	switch b.Exp {
	case "table2", "mitigation", "bender", "fleet":
		sweep = timing.Table2Marks()
	}
	scens, err := ParseScenarioSet(b.scenarioSet())
	if err != nil {
		return StudyConfig{}, err
	}
	var fleet *FleetPlan
	if b.Exp == "fleet" {
		if b.Module != "" {
			return StudyConfig{}, fmt.Errorf("core: -exp fleet draws synthetic chips from the population model; -module %s selects inventory hardware", b.Module)
		}
		if b.Chips < 1 {
			return StudyConfig{}, fmt.Errorf("core: -exp fleet needs at least 1 chip (got %d)", b.Chips)
		}
		mods = nil
		fleet = &FleetPlan{Chips: b.Chips}
	}
	cfg := StudyConfig{
		Fleet:         fleet,
		Modules:       mods,
		Sweep:         sweep,
		RowsPerRegion: b.Rows,
		Dies:          b.Dies,
		Runs:          b.Runs,
		Scenarios:     scens,
		Opts: RunOpts{
			Budget: b.Budget,
			TempC:  b.Temp,
			Data:   device.Checkerboard,
		},
	}
	if err := cfg.validateScenarios(); err != nil {
		return StudyConfig{}, err
	}
	return cfg, nil
}

// ParseScenarioSet resolves a scenario-set name into the scenario axis:
//
//	default          the single default scenario (nil axis — the
//	                 pre-scenario grid, fingerprints unchanged)
//	mitigations      MitigationScenarios(): unprotected baseline plus
//	                 TRR, refresh-rate and ECC variants
//	bender           the cycle-accurate bender-trace engine
//	bank             the command-by-command bank engine
//	thermal:T1,T2    one scenario per setpoint, each settled through
//	                 the heater-pad/PID loop
func ParseScenarioSet(set string) ([]Scenario, error) {
	switch set {
	case "", "default":
		return nil, nil
	case "mitigations":
		return MitigationScenarios(), nil
	case "bender":
		return []Scenario{{ID: "bender", Engine: EngineBenderTrace}}, nil
	case "bank":
		return []Scenario{{ID: "bank", Engine: EngineBank}}, nil
	}
	if temps, ok := strings.CutPrefix(set, "thermal:"); ok {
		var out []Scenario
		for _, s := range strings.Split(temps, ",") {
			t, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || t <= 0 {
				return nil, fmt.Errorf("core: scenario set %q: bad setpoint %q", set, s)
			}
			out = append(out, Scenario{
				ID:      fmt.Sprintf("t%g", t),
				Thermal: &ThermalSpec{SetpointC: t},
			})
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("core: scenario set %q names no setpoints", set)
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown scenario set %q (default, mitigations, bender, bank, or thermal:T1,T2,...)", set)
}

// MitigationScenarios is the standard mitigation-evaluation axis: the
// unprotected baseline and TRR/refresh-rate/ECC variants, all riding
// the "mitigated" engine (import rowfuse/internal/mitigation to
// register it). TRR acts on REF commands, so every TRR variant also
// enables periodic refresh.
func MitigationScenarios() []Scenario {
	return []Scenario{
		{ID: "baseline", Engine: EngineMitigated, Mitigation: &MitigationSpec{}},
		{ID: "trr4", Engine: EngineMitigated, Mitigation: &MitigationSpec{TRRCounters: 4, RefreshMult: 1}},
		{ID: "trr16", Engine: EngineMitigated, Mitigation: &MitigationSpec{TRRCounters: 16, RefreshMult: 1}},
		{ID: "trr16-2x", Engine: EngineMitigated, Mitigation: &MitigationSpec{TRRCounters: 16, RefreshMult: 2}},
		{ID: "ecc", Engine: EngineMitigated, Mitigation: &MitigationSpec{ECC: true}},
		{ID: "trr16-ecc", Engine: EngineMitigated, Mitigation: &MitigationSpec{TRRCounters: 16, RefreshMult: 1, ECC: true}},
	}
}
