package core

import (
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/timing"
)

// CampaignGrid resolves the module and experiment flags shared by
// cmd/characterize and cmd/campaignd into the campaign's module set
// and tAggON sweep: the whole Table 1 inventory (or one module), and
// the paper sweep ("table2" narrows to the three Table 2 marks). Both
// commands must agree exactly — the grid feeds the config fingerprint
// — which is why the mapping lives here and not in either main.
func CampaignGrid(moduleID, exp string) ([]chipdb.ModuleInfo, []time.Duration, error) {
	mods := chipdb.Modules()
	if moduleID != "" {
		mi, err := chipdb.ByID(moduleID)
		if err != nil {
			return nil, nil, err
		}
		mods = []chipdb.ModuleInfo{mi}
	}
	sweep := timing.PaperSweep()
	if exp == "table2" {
		sweep = timing.Table2Marks()
	}
	return mods, sweep, nil
}

// CampaignConfig is the canonical flag-to-config assembly shared by
// cmd/characterize and cmd/campaignd. Both commands must build the
// result-determining fields identically — the config fingerprint is
// what lets a campaignd-coordinated campaign be rendered later with
// `characterize -merge` under the same flags — so that assembly lives
// in exactly one place. Execution details (concurrency, progress,
// shard, checkpoint cadence) are set by each caller; they are excluded
// from the fingerprint.
func CampaignConfig(mods []chipdb.ModuleInfo, sweep []time.Duration, rows, dies, runs int, temp float64, budget time.Duration) StudyConfig {
	return StudyConfig{
		Modules:       mods,
		Sweep:         sweep,
		RowsPerRegion: rows,
		Dies:          dies,
		Runs:          runs,
		Opts: RunOpts{
			Budget: budget,
			TempC:  temp,
			Data:   device.Checkerboard,
		},
	}
}
