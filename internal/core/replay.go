package core

import (
	"fmt"

	"rowfuse/internal/device"
	"rowfuse/internal/dramcmd"
)

// ReplayTrace executes a timestamped command trace against a bank —
// the glue between trace-producing tools (the bender interpreter's
// RecordTrace, pattern.Spec.Trace) and the device model. It enables
// record-once / replay-anywhere experiments: capture a command stream
// from one run and re-apply it to a different simulated module.
//
// REF commands are applied to the target bank only (a trace replayed
// onto a single bank has no visibility into sibling banks).
func ReplayTrace(bank *device.Bank, tr *dramcmd.Trace) error {
	if bank == nil {
		return fmt.Errorf("core: replay needs a bank")
	}
	if tr == nil {
		return fmt.Errorf("core: replay needs a trace")
	}
	for i, c := range tr.Commands {
		var err error
		switch c.Kind {
		case dramcmd.ACT:
			err = bank.Activate(c.Row, c.At)
		case dramcmd.PRE:
			err = bank.Precharge(c.At)
		case dramcmd.RD:
			_, err = bank.Read(c.Col, 8, c.At)
		case dramcmd.WR:
			err = bank.Write(c.Col, c.Data, c.At)
		case dramcmd.REF:
			err = bank.Refresh(c.At)
		case dramcmd.NOP:
			// No device effect.
		default:
			err = fmt.Errorf("unsupported command kind %v", c.Kind)
		}
		if err != nil {
			return fmt.Errorf("core: replay command %d (%s): %w", i, c.Kind, err)
		}
	}
	return nil
}
