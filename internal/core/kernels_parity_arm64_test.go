//go:build arm64 && !purego

package core

import "rowfuse/internal/cpu"

// vectorKernelsUnderTest enumerates every vector kernel compiled into
// this binary that the running CPU can execute.
func vectorKernelsUnderTest() []kernelUnderTest {
	var ks []kernelUnderTest
	if cpu.ARM64.HasNEON {
		ks = append(ks, kernelUnderTest{"neon", damageSplitNEON, damageFusedNEON})
	}
	return ks
}
