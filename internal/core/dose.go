package core

import (
	"fmt"
	"sort"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// CellFlipPoint is one cell's first-flip coordinate under a pattern.
type CellFlipPoint struct {
	Flip device.Bitflip
	// Iterations is the 1-based pattern iteration of the flip.
	Iterations int64
	// ACount is the total activation count at the flip (the cell's
	// "hammer count to first flip", HCfirst, generalized to combined
	// patterns).
	ACount int64
}

// CellFlipPoints computes the first-flip point of every vulnerable cell
// of a victim row under the pattern, sorted by activation count. Unlike
// CharacterizeRow (which stops at the row's first flip, as the paper's
// ACmin procedure does), this exposes the whole dose-response curve of
// the row.
func (e *AnalyticEngine) CellFlipPoints(victim int, spec pattern.Spec, opts RunOpts) ([]CellFlipPoint, error) {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		return nil, err
	}
	terms := e.termsFor(&spec)
	tf := e.params.TempFactor(opts.TempC)
	maxIters := spec.MaxIterations(opts.Budget)
	cells := e.cellsFor(victim, opts.Run)

	var points []CellFlipPoint
	for i := range cells {
		c := &cells[i]
		if opts.Data.VictimBitAt(c.Bit) != c.Dir.From() {
			continue
		}
		fp, ok := firstFlip(c, terms, e.weakSide, tf, maxIters, &e.scratch)
		if !ok {
			continue
		}
		points = append(points, CellFlipPoint{
			Flip: device.Bitflip{
				Row:  victim,
				Bit:  c.Bit,
				Dir:  c.Dir,
				Mech: c.Mech,
			},
			Iterations: fp.iter,
			ACount:     (fp.iter-1)*int64(spec.ActsPerIteration()) + int64(fp.act) + 1,
		})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].ACount < points[j].ACount })
	return points, nil
}

// FlipsAtCount returns the bitflips that have occurred once totalActs
// aggressor activations of the pattern have been applied.
func (e *AnalyticEngine) FlipsAtCount(victim int, spec pattern.Spec, totalActs int64, opts RunOpts) ([]device.Bitflip, error) {
	points, err := e.CellFlipPoints(victim, spec, opts)
	if err != nil {
		return nil, err
	}
	var flips []device.Bitflip
	for _, p := range points {
		if p.ACount <= totalActs {
			flips = append(flips, p.Flip)
		}
	}
	return flips, nil
}

// DosePoint is one point of a dose-response curve: how many bits of the
// row have flipped after a given activation dose.
type DosePoint struct {
	TotalActs int64
	Flips     int
}

// DoseResponse evaluates the cumulative flip count of a victim row at
// each activation dose (doses need not be sorted).
func (e *AnalyticEngine) DoseResponse(victim int, spec pattern.Spec, doses []int64, opts RunOpts) ([]DosePoint, error) {
	if len(doses) == 0 {
		return nil, fmt.Errorf("core: dose response needs at least one dose")
	}
	points, err := e.CellFlipPoints(victim, spec, opts)
	if err != nil {
		return nil, err
	}
	out := make([]DosePoint, 0, len(doses))
	for _, d := range doses {
		n := 0
		for _, p := range points {
			if p.ACount <= d {
				n++
			}
		}
		out = append(out, DosePoint{TotalActs: d, Flips: n})
	}
	return out, nil
}
