package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rowfuse/internal/analysis"
	"rowfuse/internal/chipdb"
)

// Fleet-scale campaigns: instead of the Table 1 module inventory, the
// grid's module axis becomes blocks of synthetic chips drawn from a
// chipdb.PopulationModel, and each cell's fold is a bounded-memory
// distribution sketch rather than the dense per-cell aggregate.
//
// A block is the unit of sharding and checkpointing, exactly as a
// module cell is for grid campaigns: every chip of a block is derived
// and characterized wholly within one shard, in ascending chip order,
// so a block's fold state depends only on (config, block index) —
// never on which worker ran it. Merging shard checkpoints and folding
// blocks in canonical order therefore renders byte-identical to an
// unsharded run.

// FleetPlan configures a synthetic-fleet campaign.
type FleetPlan struct {
	// Chips is the fleet size (the ROADMAP target is 10^5–10^6).
	Chips int `json:"chips"`
	// ChipsPerCell is the block size: how many chips one grid cell
	// (the dispatch/checkpoint unit) covers. Default 512.
	ChipsPerCell int `json:"chipsPerCell,omitempty"`
	// RowsPerChip is the victim-row sample per chip. Fleet campaigns
	// trade per-chip depth for population breadth; default 3 (one row
	// per bank region).
	RowsPerChip int `json:"rowsPerChip,omitempty"`
	// Seed namespaces the population (chipdb.PopulationModel.Seed).
	Seed int64 `json:"seed,omitempty"`
	// ProcessSigma / DieToDieSigma override the population priors
	// (0 = chipdb defaults).
	ProcessSigma  float64 `json:"processSigma,omitempty"`
	DieToDieSigma float64 `json:"dieToDieSigma,omitempty"`
}

func (f FleetPlan) withDefaults() FleetPlan {
	if f.ChipsPerCell == 0 {
		f.ChipsPerCell = 512
	}
	if f.RowsPerChip == 0 {
		f.RowsPerChip = 3
	}
	return f
}

// Validate checks the plan is runnable.
func (f FleetPlan) Validate() error {
	if f.Chips < 1 {
		return fmt.Errorf("core: fleet needs at least 1 chip (got %d)", f.Chips)
	}
	if f.ChipsPerCell < 1 {
		return fmt.Errorf("core: fleet chips-per-cell %d < 1", f.ChipsPerCell)
	}
	if f.RowsPerChip < 1 {
		return fmt.Errorf("core: fleet rows-per-chip %d < 1", f.RowsPerChip)
	}
	return nil
}

// Blocks returns the number of chip blocks (grid cells per
// pattern/sweep/scenario point) the fleet splits into.
func (f FleetPlan) Blocks() int {
	return (f.Chips + f.ChipsPerCell - 1) / f.ChipsPerCell
}

// BlockRange returns block b's chip range [lo, hi).
func (f FleetPlan) BlockRange(b int) (lo, hi int) {
	lo = b * f.ChipsPerCell
	hi = lo + f.ChipsPerCell
	if hi > f.Chips {
		hi = f.Chips
	}
	return lo, hi
}

// Population builds the plan's chip generator.
func (f FleetPlan) Population() *chipdb.PopulationModel {
	m := chipdb.NewPopulation(f.Seed)
	if f.ProcessSigma != 0 {
		m.ProcessSigma = f.ProcessSigma
	}
	if f.DieToDieSigma != 0 {
		m.DieToDieSigma = f.DieToDieSigma
	}
	return m
}

// fleetBlockPrefix frames block IDs on the grid's module axis. The
// zero-padded index keeps the checkpoint sort order equal to the
// numeric block order.
const fleetBlockPrefix = "fleet["

// FleetBlockID names block b on the cell grid's module axis
// ("fleet[00000042]").
func FleetBlockID(b int) string {
	return fmt.Sprintf("%s%08d]", fleetBlockPrefix, b)
}

// ParseFleetBlockID inverts FleetBlockID.
func ParseFleetBlockID(s string) (int, bool) {
	if !strings.HasPrefix(s, fleetBlockPrefix) || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	digits := s[len(fleetBlockPrefix) : len(s)-1]
	if len(digits) != 8 {
		return 0, false
	}
	b, err := strconv.Atoi(digits)
	if err != nil || b < 0 {
		return 0, false
	}
	return b, true
}

// FleetGroupState is the serialized per-(vendor, die type) slice of a
// fleet fold: chip and flip counts, the ACmin and time-to-first-flip
// quantile sketches over flipped chips (analysis.Sketch bytes,
// base64 in JSON), and streaming moments of per-chip ACmin.
type FleetGroupState struct {
	Key     string           `json:"key"`
	Chips   uint64           `json:"chips"`
	Flipped uint64           `json:"flipped"`
	ACmin   []byte           `json:"acmin,omitempty"`
	TimeS   []byte           `json:"timeS,omitempty"`
	Moments analysis.Moments `json:"moments"`
}

// FleetAggState is the complete serialized state of one fleet cell's
// fold, with groups sorted by key so equal folds serialize to equal
// bytes.
type FleetAggState struct {
	Groups []FleetGroupState `json:"groups"`
}

// fleetGroup is the live accumulator behind one FleetGroupState.
type fleetGroup struct {
	chips   uint64
	flipped uint64
	acmin   *analysis.Sketch
	timeS   *analysis.Sketch
	mom     analysis.Moments
}

func newFleetGroup() *fleetGroup {
	return &fleetGroup{
		acmin: analysis.NewSketch(analysis.SketchAlpha),
		timeS: analysis.NewSketch(analysis.SketchAlpha),
	}
}

// fleetAggregate is the Fold of one fleet block cell. Observations
// arrive in (chip, run, row) order; the fold reduces each chip's
// RowsPerChip x Runs observations to a per-chip summary (flipped?,
// min ACmin, min time-to-first-flip) and folds that into the chip's
// vendor/die group. Resident size is O(groups x sketch), independent
// of how many chips stream through.
type fleetAggregate struct {
	perChip int      // observations per chip (RowsPerChip * Runs)
	groups  []string // group key per chip offset; dropped when the block completes
	total   int
	byGroup map[string]*fleetGroup

	curChip  int
	curSeen  int
	curFlip  bool
	curACmin float64
	curTime  float64
}

func newFleetAggregate(perChip int, groups []string) *fleetAggregate {
	return &fleetAggregate{
		perChip: perChip,
		groups:  groups,
		byGroup: make(map[string]*fleetGroup),
		curChip: -1,
	}
}

// Observe folds one row measurement of chip offset `chip` (Fold).
func (f *fleetAggregate) Observe(chip int, rr RowResult) {
	if chip != f.curChip {
		if f.curSeen != 0 {
			panic(fmt.Sprintf("core: fleet fold: chip %d interrupted mid-stream at %d/%d observations",
				f.curChip, f.curSeen, f.perChip))
		}
		f.curChip = chip
	}
	f.total++
	f.curSeen++
	if !rr.NoBitflip {
		ac := float64(rr.ACmin)
		t := rr.TimeToFirst.Seconds()
		if !f.curFlip || ac < f.curACmin {
			f.curACmin = ac
		}
		if !f.curFlip || t < f.curTime {
			f.curTime = t
		}
		f.curFlip = true
	}
	if f.curSeen == f.perChip {
		f.finishChip()
	}
}

func (f *fleetAggregate) finishChip() {
	key := f.groups[f.curChip]
	g := f.byGroup[key]
	if g == nil {
		g = newFleetGroup()
		f.byGroup[key] = g
	}
	g.chips++
	if f.curFlip {
		g.flipped++
		g.acmin.Add(f.curACmin)
		g.timeS.Add(f.curTime)
		g.mom.Add(f.curACmin)
	}
	f.curSeen, f.curFlip, f.curACmin, f.curTime = 0, false, 0, 0
	// The group lookup table is O(block); once the last chip is
	// folded it has served its purpose — drop it so completed cells
	// retain only the O(sketch) distribution state.
	if f.curChip == len(f.groups)-1 {
		f.groups = nil
	}
}

// Total reports the number of observations folded in (Fold).
func (f *fleetAggregate) Total() int { return f.total }

// State exports the fold for checkpointing (Fold): groups sorted by
// key, sketches in their deterministic binary form.
func (f *fleetAggregate) State() AggregateState {
	if f.curSeen != 0 {
		panic(fmt.Sprintf("core: fleet fold snapshot with chip %d mid-stream", f.curChip))
	}
	fl := &FleetAggState{Groups: make([]FleetGroupState, 0, len(f.byGroup))}
	for key, g := range f.byGroup {
		gs := FleetGroupState{
			Key:     key,
			Chips:   g.chips,
			Flipped: g.flipped,
			Moments: g.mom,
		}
		if g.flipped > 0 {
			gs.ACmin = g.acmin.AppendBinary(nil)
			gs.TimeS = g.timeS.AppendBinary(nil)
		}
		fl.Groups = append(fl.Groups, gs)
	}
	sort.Slice(fl.Groups, func(i, j int) bool { return fl.Groups[i].Key < fl.Groups[j].Key })
	return AggregateState{Total: f.total, Fleet: fl}
}

// fleetFromState reconstructs a fleet fold from persisted state.
func fleetFromState(st AggregateState) (*fleetAggregate, error) {
	f := newFleetAggregate(0, nil)
	f.total = st.Total
	for _, gs := range st.Fleet.Groups {
		g := newFleetGroup()
		g.chips = gs.Chips
		g.flipped = gs.Flipped
		g.mom = gs.Moments
		if len(gs.ACmin) > 0 {
			sk, _, err := analysis.SketchFromBinary(gs.ACmin)
			if err != nil {
				return nil, fmt.Errorf("core: fleet group %q acmin sketch: %w", gs.Key, err)
			}
			g.acmin = sk
		}
		if len(gs.TimeS) > 0 {
			sk, _, err := analysis.SketchFromBinary(gs.TimeS)
			if err != nil {
				return nil, fmt.Errorf("core: fleet group %q time sketch: %w", gs.Key, err)
			}
			g.timeS = sk
		}
		f.byGroup[gs.Key] = g
	}
	return f, nil
}

// mergeFleetStates fuses two fleet cell states group-wise. Sketch and
// counter merges are exact and order-insensitive; like the grid
// merge, campaign machinery only ever exercises this when fusing a
// seeded cell with new observations of the same cell.
func mergeFleetStates(a, b AggregateState) AggregateState {
	if a.Fleet == nil || b.Fleet == nil {
		// A fleet and a grid state under one cell key means corrupt
		// inputs; surface it loudly rather than silently dropping one
		// side.
		panic("core: merging fleet and non-fleet aggregate states")
	}
	fa, errA := fleetFromState(a)
	fb, errB := fleetFromState(b)
	if errA != nil || errB != nil {
		panic(fmt.Sprintf("core: merging undecodable fleet states: %v %v", errA, errB))
	}
	fa.total += fb.total
	for key, g := range fb.byGroup {
		dst := fa.byGroup[key]
		if dst == nil {
			fa.byGroup[key] = g
			continue
		}
		dst.chips += g.chips
		dst.flipped += g.flipped
		if err := dst.acmin.Merge(g.acmin); err != nil {
			panic(fmt.Sprintf("core: fleet merge: %v", err))
		}
		if err := dst.timeS.Merge(g.timeS); err != nil {
			panic(fmt.Sprintf("core: fleet merge: %v", err))
		}
		dst.mom.Merge(g.mom)
	}
	return fa.State()
}

// FleetGroupStat is one merged vendor/die-type slice of a fleet
// campaign, ready for reporting.
type FleetGroupStat struct {
	// Key is the group ("Mfr. S 8Gb D-Die").
	Key string
	// Chips and Flipped count the group's fleet slice and how many of
	// those chips flipped at least once.
	Chips, Flipped uint64
	// ACmin and TimeS are quantile sketches of per-chip minimum ACmin
	// and time-to-first-flip across flipped chips.
	ACmin, TimeS *analysis.Sketch
	// Moments are streaming moments of per-chip minimum ACmin.
	Moments analysis.Moments
}

// Survival is the fraction of the group's chips with no bitflip.
func (g FleetGroupStat) Survival() float64 {
	if g.Chips == 0 {
		return 0
	}
	return 1 - float64(g.Flipped)/float64(g.Chips)
}

// FleetScenarioStat aggregates one scenario's full fleet
// distribution.
type FleetScenarioStat struct {
	// Scenario is the scenario ID ("" = default).
	Scenario string
	// Cells counts the fleet cells folded in (for partial reports:
	// compare against the campaign's cell count for this scenario).
	Cells int
	// Groups are the vendor/die-type slices, sorted by key.
	Groups []FleetGroupStat
}

// Chips sums the scenario's observed chips across groups.
func (s FleetScenarioStat) Chips() uint64 {
	var n uint64
	for _, g := range s.Groups {
		n += g.Chips
	}
	return n
}

// FleetStats merges fleet cell states into per-scenario, per-group
// distributions. Cells are folded in canonical key order, so any
// subset of a campaign's cells (a partial report) and any shard
// composition of the full set produce deterministic — and for the
// full set, identical — results. Non-fleet cells are an error.
func FleetStats(cells map[CellKey]AggregateState) ([]FleetScenarioStat, error) {
	keys := make([]CellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.AggOn != b.AggOn {
			return a.AggOn < b.AggOn
		}
		return a.Scenario < b.Scenario
	})
	merged := make(map[string]*fleetAggregate)
	counts := make(map[string]int)
	var order []string
	for _, k := range keys {
		st := cells[k]
		if st.Fleet == nil {
			return nil, fmt.Errorf("core: cell %v is not a fleet cell", k)
		}
		counts[k.Scenario]++
		dst, ok := merged[k.Scenario]
		if !ok {
			var err error
			if dst, err = fleetFromState(st); err != nil {
				return nil, fmt.Errorf("core: cell %v: %w", k, err)
			}
			merged[k.Scenario] = dst
			order = append(order, k.Scenario)
			continue
		}
		res := mergeFleetStates(dst.State(), st)
		next, err := fleetFromState(res)
		if err != nil {
			return nil, fmt.Errorf("core: cell %v: %w", k, err)
		}
		merged[k.Scenario] = next
	}
	sort.Strings(order)
	out := make([]FleetScenarioStat, 0, len(order))
	for _, sc := range order {
		f := merged[sc]
		stat := FleetScenarioStat{Scenario: sc, Cells: counts[sc]}
		gKeys := make([]string, 0, len(f.byGroup))
		for k := range f.byGroup {
			gKeys = append(gKeys, k)
		}
		sort.Strings(gKeys)
		for _, gk := range gKeys {
			g := f.byGroup[gk]
			stat.Groups = append(stat.Groups, FleetGroupStat{
				Key:     gk,
				Chips:   g.chips,
				Flipped: g.flipped,
				ACmin:   g.acmin,
				TimeS:   g.timeS,
				Moments: g.mom,
			})
		}
		out = append(out, stat)
	}
	return out, nil
}
