package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// fleetJob is one (chip block, pattern, tAggON, scenario) cell of a
// fleet run. Unlike grid cells, a block is not split further: its
// chips must stream through the fold in ascending order, and blocks
// are numerous enough (fleet/ChipsPerCell) to keep the pool busy.
type fleetJob struct {
	key      CellKey
	block    int
	spec     pattern.Spec
	scenario Scenario
	opts     RunOpts
}

// runFleet executes the selected cells of a fleet campaign. It
// mirrors Run's pool/checkpoint/progress behavior with blocks as the
// unit of work.
func (s *Study) runFleet(ctx context.Context) error {
	plan := *s.cfg.Fleet
	if err := plan.Validate(); err != nil {
		return err
	}
	scByID := make(map[string]Scenario)
	optsByID := make(map[string]RunOpts)
	for _, sc := range s.cfg.scenarios() {
		opts, err := sc.resolveOpts(s.cfg.Opts)
		if err != nil {
			return err
		}
		scByID[sc.ID] = sc
		optsByID[sc.ID] = opts
	}
	grid := s.Cells()
	selected, err := s.selectCells(grid)
	if err != nil {
		return err
	}
	var jobs []*fleetJob
	for idx, key := range grid {
		if !selected(idx) {
			continue
		}
		if _, ok := s.ResultCell(key); ok {
			continue // restored from a checkpoint
		}
		block, ok := ParseFleetBlockID(key.Module)
		if !ok || block >= plan.Blocks() {
			return fmt.Errorf("core: fleet cell %v: bad block id", key)
		}
		spec, err := pattern.New(key.Kind, key.AggOn, s.cfg.Timings)
		if err != nil {
			return fmt.Errorf("fleet block %d: %w", block, err)
		}
		jobs = append(jobs, &fleetJob{
			key:      key,
			block:    block,
			spec:     spec,
			scenario: scByID[key.Scenario],
			opts:     optsByID[key.Scenario],
		})
	}

	var ckptMu sync.Mutex
	checkpoint := func() error {
		if s.cfg.Checkpoint == nil {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return s.cfg.Checkpoint(s.Snapshot())
	}

	jobCh := make(chan *fleetJob)
	errCh := make(chan error, 1)
	var done atomic.Int64
	total := len(jobs)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				res, err := s.runFleetBlock(&plan, job)
				if err != nil {
					fail(err)
					return
				}
				s.mu.Lock()
				s.results[job.key] = res
				s.mu.Unlock()
				n := int(done.Add(1))
				if s.cfg.Progress != nil {
					s.cfg.Progress(n, total)
				}
				if s.cfg.Checkpoint != nil && n%s.cfg.CheckpointEvery == 0 && n < total {
					if err := checkpoint(); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}

feed:
	for _, job := range jobs {
		select {
		case jobCh <- job:
		case <-ctx.Done():
			break feed
		case err := <-errCh:
			close(jobCh)
			wg.Wait()
			return err
		}
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return checkpoint()
}

// fleetVictims picks the per-chip victim sample: the first
// RowsPerChip rows of the paper's three-region sampling for the
// chip's geometry. Deterministic per geometry; chip-to-chip variation
// enters through the derived profile, not the row choice.
func fleetVictims(numRows, rowsPerChip int) []int {
	perRegion := (rowsPerChip + 2) / 3
	rows := PaperRows(numRows, perRegion)
	return rows[:rowsPerChip]
}

// runFleetBlock derives and characterizes every chip of one block in
// ascending chip order, streaming row results into a fleet fold. The
// block's fold state depends only on the study config and block
// index.
func (s *Study) runFleetBlock(plan *FleetPlan, job *fleetJob) (*ModuleResult, error) {
	lo, hi := plan.BlockRange(job.block)
	model := plan.Population()
	perChip := s.cfg.Runs * plan.RowsPerChip
	groups := make([]string, hi-lo)
	fold := newFleetAggregate(perChip, groups)
	opts := job.opts
	var res RowResult
	for i := lo; i < hi; i++ {
		chip := model.Derive(i)
		off := i - lo
		groups[off] = chip.GroupKey()
		profile := device.DieProfile(chip.Info.Profile(s.cfg.Params), 0)
		numRows, rowBytes := chip.Info.Geometry()
		victims := fleetVictims(numRows, plan.RowsPerChip)
		if job.scenario.usesAnalytic() {
			eng, err := NewAnalyticEngine(AnalyticConfig{
				Profile:  profile,
				Params:   s.cfg.Params,
				Bank:     s.cfg.Bank,
				NumRows:  numRows,
				RowBytes: rowBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("fleet chip %d: %w", i, err)
			}
			for run := 0; run < s.cfg.Runs; run++ {
				opts.Run = int64(run)
				for _, victim := range victims {
					if err := eng.CharacterizeRowInto(victim, job.spec, opts, &res); err != nil {
						return nil, fmt.Errorf("fleet chip %d row %d: %w", i, victim, err)
					}
					fold.Observe(off, res)
				}
			}
			continue
		}
		for run := 0; run < s.cfg.Runs; run++ {
			env := EngineEnv{
				Profile:  profile,
				Params:   s.cfg.Params,
				Timings:  s.cfg.Timings,
				Bank:     s.cfg.Bank,
				NumRows:  numRows,
				RowBytes: rowBytes,
				Run:      int64(run),
			}
			eng, err := newScenarioEngine(env, job.scenario)
			if err != nil {
				return nil, fmt.Errorf("fleet chip %d scenario %q: %w", i, job.key.Scenario, err)
			}
			opts.Run = int64(run)
			for _, victim := range victims {
				rr, err := eng.CharacterizeRow(victim, job.spec, opts)
				if err != nil {
					return nil, fmt.Errorf("fleet chip %d scenario %q row %d: %w", i, job.key.Scenario, victim, err)
				}
				fold.Observe(off, rr)
			}
		}
	}
	// The block has no single underlying DIMM; ModuleResult carries a
	// placeholder identity with the block ID.
	return &ModuleResult{
		Info: chipdb.ModuleInfo{ID: job.key.Module},
		Spec: job.spec,
		agg:  fold,
	}, nil
}
