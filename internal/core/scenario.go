// The scenario axis: a fourth campaign grid dimension next to module,
// pattern and tAggON. A Scenario selects the execution engine and the
// operating conditions of a cell — mitigation configuration, thermal
// setpoint, data pattern — as pure serializable data, so campaign
// specs carrying scenarios shard, checkpoint, dispatch and fingerprint
// exactly like plain grids. A default (empty) scenario reproduces the
// pre-scenario pipeline byte for byte: it adds nothing to the config
// fingerprint, nothing to cell keys and nothing to checkpoints (pinned
// by the golden compatibility suite at the repo root).
package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/thermal"
	"rowfuse/internal/timing"
)

// Engine kinds core implements itself. Additional kinds (like the
// mitigation package's "mitigated") join through RegisterEngineKind.
const (
	// EngineAnalytic is the closed-form engine ("" selects it too).
	EngineAnalytic = "analytic"
	// EngineBank drives a simulated device.Bank command by command
	// (with the event-horizon fast-forward).
	EngineBank = "bank"
	// EngineBenderTrace compiles the cell's access pattern to a bender
	// program and executes it on the cycle-accurate interpreter, with
	// the same event-horizon fast-forward applied to the trace's
	// hammer loop (see bendertrace.go).
	EngineBenderTrace = "bender-trace"
	// EngineMitigated is registered by rowfuse/internal/mitigation: a
	// guarded bank with TRR, periodic refresh and rank ECC.
	EngineMitigated = "mitigated"
)

// Scenario is one point on the campaign's scenario axis. The zero
// value is the default scenario: the analytic engine under the study's
// own RunOpts, which is what every pre-scenario campaign ran. All
// fields are data, never callbacks, so a Scenario serializes into
// manifests and hashes into config fingerprints.
type Scenario struct {
	// ID names the scenario inside cell keys and reports. It must be
	// unique within a config and non-empty for any non-default
	// scenario ("" is reserved for the default).
	ID string `json:"id,omitempty"`
	// Engine selects the execution engine kind ("" = analytic).
	Engine string `json:"engine,omitempty"`
	// TempC overrides the study's die temperature (0 = inherit).
	TempC float64 `json:"tempC,omitempty"`
	// Data overrides the study's data pattern (0 = inherit).
	Data device.DataPattern `json:"data,omitempty"`
	// Mitigation configures the "mitigated" engine.
	Mitigation *MitigationSpec `json:"mitigation,omitempty"`
	// Thermal, when set, derives the effective die temperature from a
	// simulated heater-pad controller settled at a setpoint, instead
	// of taking TempC at face value.
	Thermal *ThermalSpec `json:"thermal,omitempty"`
	// Trace configures the "bender-trace" engine.
	Trace *TraceSpec `json:"trace,omitempty"`
}

// MitigationSpec configures the mitigated engine: which defenses are
// switched on while the cell's pattern hammers. It lives in core (not
// the mitigation package) so manifests and fingerprints can carry it
// without core importing the engine implementation.
type MitigationSpec struct {
	// TRRCounters enables a Misra-Gries TRR tracker with this many
	// counters (0 = no TRR).
	TRRCounters int `json:"trrCounters,omitempty"`
	// VictimsPerRef is how many tracked aggressors TRR neutralizes per
	// REF (0 = the guard's default of 2).
	VictimsPerRef int `json:"victimsPerRef,omitempty"`
	// RefreshMult enables periodic refresh at RefreshMult times the
	// nominal rate (1 = every tREFI, 2 = twice as often; 0 disables
	// refresh, the paper's characterization methodology).
	RefreshMult float64 `json:"refreshMult,omitempty"`
	// ECC applies rank-level SEC-DED to the first surviving flip: rows
	// whose every ECC word has at most one flipped bit read back clean.
	ECC bool `json:"ecc,omitempty"`
}

// ThermalSpec derives a cell's effective temperature from the
// simulated heater-pad/PID loop of internal/thermal: the controller is
// settled at the setpoint and the achieved plant temperature (within
// the paper's ±0.2 °C band, not exactly the setpoint) feeds the
// device model. Deterministic: the plant's disturbance is a hash of
// the step index.
type ThermalSpec struct {
	// SetpointC is the controller target.
	SetpointC float64 `json:"setpointC"`
	// AmbientC is the ambient the plant starts from (default 30).
	AmbientC float64 `json:"ambientC,omitempty"`
	// SettleNs is how long the loop runs before the temperature is
	// read (default 2 simulated minutes).
	SettleNs int64 `json:"settleNs,omitempty"`
}

// TraceSpec configures the bender-trace engine.
type TraceSpec struct {
	// Burst is the RD/WR burst size in bytes (default 8).
	Burst int `json:"burst,omitempty"`
	// Exact disables the trace fast-forward: the whole program runs
	// instruction by instruction. Results are byte-identical either
	// way; exact is the reference the fast path is validated against.
	Exact bool `json:"exact,omitempty"`
}

// IsDefault reports whether the scenario is the zero value — the
// pre-scenario behaviour every default campaign gets.
func (sc Scenario) IsDefault() bool { return sc == Scenario{} }

// usesAnalytic reports whether the scenario runs on the analytic
// engine (and therefore wants the shared per-die population cache).
func (sc Scenario) usesAnalytic() bool {
	return sc.Engine == "" || sc.Engine == EngineAnalytic
}

// Validate checks the scenario's structural invariants (engine kinds
// are resolved later, at cell execution, so coordinators can carry
// scenarios whose engine package they never import).
func (sc Scenario) Validate() error {
	if m := sc.Mitigation; m != nil {
		if m.TRRCounters < 0 || m.VictimsPerRef < 0 || m.RefreshMult < 0 {
			return fmt.Errorf("core: scenario %q: negative mitigation parameter", sc.ID)
		}
	}
	if t := sc.Thermal; t != nil {
		if t.SetpointC <= 0 {
			return fmt.Errorf("core: scenario %q: thermal setpoint must be positive", sc.ID)
		}
		if t.SettleNs < 0 {
			return fmt.Errorf("core: scenario %q: negative thermal settle", sc.ID)
		}
	}
	if t := sc.Trace; t != nil && t.Burst < 0 {
		return fmt.Errorf("core: scenario %q: negative trace burst", sc.ID)
	}
	if sc.TempC < 0 {
		return fmt.Errorf("core: scenario %q: negative temperature", sc.ID)
	}
	return nil
}

// fingerprint is the scenario's canonical hash contribution: its JSON
// form, which is deterministic (struct field order) and shared with
// the dispatch manifest encoding.
func (sc Scenario) fingerprint() string {
	b, err := json.Marshal(sc)
	if err != nil {
		// Scenario is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("core: scenario fingerprint: %v", err))
	}
	return string(b)
}

// resolveOpts applies the scenario's operating-condition overrides to
// the study's base RunOpts. Thermal resolution runs the controller
// settle once; Study.Run memoizes the result per scenario.
func (sc Scenario) resolveOpts(base RunOpts) (RunOpts, error) {
	opts := base
	if sc.TempC != 0 {
		opts.TempC = sc.TempC
	}
	if sc.Data != 0 {
		opts.Data = sc.Data
	}
	if sc.Thermal != nil {
		t, err := sc.Thermal.settle()
		if err != nil {
			return RunOpts{}, fmt.Errorf("core: scenario %q: %w", sc.ID, err)
		}
		opts.TempC = t
	}
	return opts, nil
}

// settle runs the heater-pad control loop to its settled temperature.
func (ts ThermalSpec) settle() (float64, error) {
	ambient := ts.AmbientC
	if ambient == 0 {
		ambient = 30
	}
	settle := time.Duration(ts.SettleNs)
	if settle == 0 {
		settle = 2 * time.Minute
	}
	plant := thermal.NewPlant(ambient)
	ctl, err := thermal.NewController(thermal.ControllerConfig{Plant: plant, Setpoint: ts.SetpointC})
	if err != nil {
		return 0, err
	}
	return ctl.Run(settle), nil
}

// EngineEnv is the per-(cell, die, run) environment an engine factory
// builds from: the die-level profile, the model constants, the bank
// geometry, and the run index for noise realizations.
type EngineEnv struct {
	// Profile is the die-level profile (DieProfile already applied).
	Profile device.Profile
	// Params are the disturbance model constants.
	Params device.DisturbParams
	// Timings is the study's DDR4 timing set.
	Timings timing.Set
	// Bank is the bank index under test.
	Bank int
	// NumRows and RowBytes are the bank geometry.
	NumRows  int
	RowBytes int
	// Run is the run-to-run noise realization index.
	Run int64
	// PopCache is the shared per-die population cache; non-nil only
	// for analytic-engine scenarios.
	PopCache *device.PopulationCache
}

// EngineFactory builds a scenario's engine for one (die, run).
type EngineFactory func(env EngineEnv, sc Scenario) (Engine, error)

var (
	engineMu        sync.RWMutex
	engineFactories = map[string]EngineFactory{}
)

// RegisterEngineKind installs a factory for an engine kind, letting
// packages that depend on core (like internal/mitigation) contribute
// scenario engines without an import cycle. Registering a core builtin
// kind or registering twice panics — both are wiring bugs.
func RegisterEngineKind(kind string, f EngineFactory) {
	switch kind {
	case "", EngineAnalytic, EngineBank, EngineBenderTrace:
		panic(fmt.Sprintf("core: engine kind %q is built in", kind))
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, ok := engineFactories[kind]; ok {
		panic(fmt.Sprintf("core: engine kind %q registered twice", kind))
	}
	engineFactories[kind] = f
}

// NewScenarioEngine resolves a scenario to a ready engine: the
// counterpart to RegisterEngineKind for callers that want to run a
// scenario's engine outside a Study (tools, benchmarks, tests). The
// scenario's non-engine axes (thermal settling, temperature and data
// overrides) are the Study's job; this resolves the engine only.
func NewScenarioEngine(env EngineEnv, sc Scenario) (Engine, error) {
	return newScenarioEngine(env, sc)
}

// newScenarioEngine resolves a scenario to a ready engine.
func newScenarioEngine(env EngineEnv, sc Scenario) (Engine, error) {
	switch sc.Engine {
	case "", EngineAnalytic:
		return NewAnalyticEngine(AnalyticConfig{
			Profile:  env.Profile,
			Params:   env.Params,
			Bank:     env.Bank,
			NumRows:  env.NumRows,
			RowBytes: env.RowBytes,
			PopCache: env.PopCache,
		})
	case EngineBank:
		b, err := device.NewBank(device.BankConfig{
			Profile:  env.Profile,
			Params:   env.Params,
			Index:    env.Bank,
			NumRows:  env.NumRows,
			RowBytes: env.RowBytes,
			RunSeed:  env.Run,
		})
		if err != nil {
			return nil, err
		}
		return NewBankEngine(b), nil
	case EngineBenderTrace:
		return newTraceEngineFor(env, sc)
	}
	engineMu.RLock()
	f, ok := engineFactories[sc.Engine]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scenario engine %q (is the package providing it imported?)", sc.Engine)
	}
	return f(env, sc)
}

// scenarios returns the configured scenario axis, defaulting to the
// single default scenario so the grid is never empty.
func (c StudyConfig) scenarios() []Scenario {
	if len(c.Scenarios) == 0 {
		return []Scenario{{}}
	}
	return c.Scenarios
}

// scenariosAreDefault reports whether the axis is indistinguishable
// from a pre-scenario campaign (nil, or exactly one default scenario):
// such configs hash, key and checkpoint without any scenario content.
func (c StudyConfig) scenariosAreDefault() bool {
	switch len(c.Scenarios) {
	case 0:
		return true
	case 1:
		return c.Scenarios[0].IsDefault()
	}
	return false
}

// validateScenarios checks the axis as a whole: per-scenario
// invariants, ID uniqueness, and that only the default scenario may go
// nameless.
func (c StudyConfig) validateScenarios() error {
	seen := make(map[string]bool, len(c.Scenarios))
	for i, sc := range c.Scenarios {
		if err := sc.Validate(); err != nil {
			return err
		}
		if sc.ID == "" && !sc.IsDefault() {
			return fmt.Errorf("core: scenario %d: non-default scenarios need an ID", i)
		}
		if seen[sc.ID] {
			return fmt.Errorf("core: duplicate scenario ID %q", sc.ID)
		}
		seen[sc.ID] = true
	}
	return nil
}

// primaryScenarioID is the scenario the 3-argument Result (and every
// table/figure extractor built on it) reads: the default scenario when
// configured, otherwise the first one. A mitigation campaign that
// lists the unprotected baseline first therefore renders its Table 2
// from the baseline, and a pure bender-trace campaign renders from its
// only scenario.
func (c StudyConfig) primaryScenarioID() string {
	scens := c.scenarios()
	for _, sc := range scens {
		if sc.ID == "" {
			return ""
		}
	}
	return scens[0].ID
}
