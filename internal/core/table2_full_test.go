package core

import (
	"testing"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// TestTable2FullInventory reproduces every cell of Table 2 for all 14
// modules at reduced row count and asserts agreement with the paper
// within 30% (the reduced sample and single-die run add variance on top
// of the calibration error; the full-scale run recorded in
// EXPERIMENTS.md lands within ~15%).
func TestTable2FullInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("full inventory sweep")
	}
	s := smallStudy(t, StudyConfig{
		Modules:  chipdb.Modules(),
		Sweep:    timing.Table2Marks(),
		Patterns: []pattern.Kind{pattern.DoubleSided, pattern.Combined},
	})
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d modules", len(rows))
	}
	const tol = 0.30
	for _, row := range rows {
		id := row.Info.ID
		cells := []struct {
			name      string
			got, want chipdb.PaperACmin
		}{
			{"RH@36ns", row.Measured.RH, row.Info.Paper.RH},
			{"RP@7.8us", row.Measured.RP78, row.Info.Paper.RP78},
			{"RP@70.2us", row.Measured.RP702, row.Info.Paper.RP702},
			{"C@7.8us", row.Measured.C78, row.Info.Paper.C78},
			{"C@70.2us", row.Measured.C702, row.Info.Paper.C702},
		}
		for _, c := range cells {
			switch {
			case c.want.NoBitflip() && !c.got.NoBitflip():
				t.Errorf("%s %s: paper No Bitflip, measured %.0f", id, c.name, c.got.Avg)
			case !c.want.NoBitflip() && c.got.NoBitflip():
				t.Errorf("%s %s: measured No Bitflip, paper %.0f", id, c.name, c.want.Avg)
			case !c.want.NoBitflip():
				if e := relErr(c.got.Avg, c.want.Avg); e > tol {
					t.Errorf("%s %s: %.0f vs paper %.0f (%.0f%% off)", id, c.name, c.got.Avg, c.want.Avg, e*100)
				}
				if c.got.Min > c.got.Avg {
					t.Errorf("%s %s: min %.0f above avg %.0f", id, c.name, c.got.Min, c.got.Avg)
				}
			}
		}
	}
}

// TestTable2MinColumnsScale checks that the measured Min columns track
// the paper's avg/min spread: the row-to-row sigma was inverted from
// exactly those ratios, so a module whose paper ratio is ~2 must show a
// clearly sub-average minimum even on a reduced sample.
func TestTable2MinColumnsScale(t *testing.T) {
	s := smallStudy(t, StudyConfig{
		Modules:       []chipdb.ModuleInfo{mustModule(t, "S0")},
		Sweep:         timing.Table2Marks(),
		Patterns:      []pattern.Kind{pattern.DoubleSided, pattern.Combined},
		RowsPerRegion: 150,
	})
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	m := rows[0].Measured
	ratio := m.RH.Avg / m.RH.Min
	// Paper's 3000-row ratio is 1.99; a 450-row sample lands lower but
	// must still show substantial spread.
	if ratio < 1.3 || ratio > 2.4 {
		t.Errorf("RH avg/min ratio = %.2f, want ~1.5-2 (paper 1.99)", ratio)
	}
}
