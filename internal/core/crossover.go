package core

import (
	"fmt"
	"sort"
	"time"

	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// CrossoverPoint describes where two patterns' time-to-first-bitflip
// curves cross as tAggON grows (Fig. 4's qualitative structure: the
// combined pattern wins at small on-times, single-sided RowPress
// catches up at large ones).
type CrossoverPoint struct {
	// Below and Above bracket the crossover: at Below the first pattern
	// is faster, at Above the second is.
	Below time.Duration
	Above time.Duration
}

// CrossoverConfig configures a crossover search between two patterns on
// one engine.
type CrossoverConfig struct {
	Engine *AnalyticEngine
	// A and B are the two pattern families to compare.
	A, B pattern.Kind
	// Sweep is the tAggON grid to scan (must be ascending).
	Sweep []time.Duration
	// Rows is the victim sample (mean time decides the winner).
	Rows []int
	Opts RunOpts
}

// FindCrossover scans the sweep and returns the first bracket where the
// faster pattern changes from A to B (or B to A). ok=false means no
// crossover inside the sweep (one pattern dominates throughout, or one
// of them never flips).
func FindCrossover(cfg CrossoverConfig) (CrossoverPoint, bool, error) {
	if cfg.Engine == nil {
		return CrossoverPoint{}, false, fmt.Errorf("core: crossover needs an engine")
	}
	if len(cfg.Sweep) < 2 {
		return CrossoverPoint{}, false, fmt.Errorf("core: crossover needs at least two sweep points")
	}
	if !sort.SliceIsSorted(cfg.Sweep, func(i, j int) bool { return cfg.Sweep[i] < cfg.Sweep[j] }) {
		return CrossoverPoint{}, false, fmt.Errorf("core: sweep must be ascending")
	}
	if len(cfg.Rows) == 0 {
		return CrossoverPoint{}, false, fmt.Errorf("core: crossover needs victim rows")
	}

	meanTime := func(kind pattern.Kind, aggOn time.Duration) (float64, bool, error) {
		spec, err := pattern.New(kind, aggOn, timing.Default())
		if err != nil {
			return 0, false, err
		}
		sum, n := 0.0, 0
		for _, victim := range cfg.Rows {
			res, err := cfg.Engine.CharacterizeRow(victim, spec, cfg.Opts)
			if err != nil {
				return 0, false, err
			}
			if !res.NoBitflip {
				sum += res.TimeToFirst.Seconds()
				n++
			}
		}
		if n == 0 {
			return 0, false, nil
		}
		return sum / float64(n), true, nil
	}

	var prevSign int
	var prevAggOn time.Duration
	havePrev := false
	for _, aggOn := range cfg.Sweep {
		ta, okA, err := meanTime(cfg.A, aggOn)
		if err != nil {
			return CrossoverPoint{}, false, err
		}
		tb, okB, err := meanTime(cfg.B, aggOn)
		if err != nil {
			return CrossoverPoint{}, false, err
		}
		if !okA || !okB {
			havePrev = false
			continue
		}
		sign := 0
		switch {
		case ta < tb:
			sign = -1
		case ta > tb:
			sign = 1
		}
		if havePrev && sign != 0 && prevSign != 0 && sign != prevSign {
			return CrossoverPoint{Below: prevAggOn, Above: aggOn}, true, nil
		}
		if sign != 0 {
			prevSign = sign
			prevAggOn = aggOn
			havePrev = true
		}
	}
	return CrossoverPoint{}, false, nil
}
