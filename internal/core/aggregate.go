package core

import (
	"math"
	"sort"

	"rowfuse/internal/device"
)

// welford is an online mean/variance/min accumulator (Welford's
// algorithm), used so module-scale studies aggregate observations in
// O(1) memory instead of retaining every row result.
type welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
}

func (w *welford) add(v float64) {
	w.n++
	if w.n == 1 || v < w.min {
		w.min = v
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// merge folds another accumulator into w (Chan et al.'s parallel
// update). Merging with an empty accumulator is exact; merging two
// non-empty halves matches the sequential fold up to float rounding.
func (w *welford) merge(o welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

func (w *welford) stats(total int) Stats {
	st := Stats{N: w.n, Total: total}
	if w.n == 0 {
		return st
	}
	st.Mean = w.mean
	st.Min = w.min
	if w.n > 1 {
		st.Std = math.Sqrt(w.m2 / float64(w.n-1))
	}
	return st
}

// cellAggregate accumulates one (module, pattern, tAggON) cell's
// observations incrementally.
type cellAggregate struct {
	total     int
	acmin     welford
	timeSec   welford
	flips     int
	oneToZero int
	flipKeys  map[uint64]struct{}
}

func newCellAggregate() *cellAggregate {
	return &cellAggregate{flipKeys: make(map[uint64]struct{})}
}

// WelfordState is the serializable state of an online mean/variance/min
// accumulator. Round-tripping through JSON is exact: Go encodes float64
// with the shortest representation that parses back bit-identically.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
}

// AggregateState is the complete, serializable state of one cell's
// aggregate. It is what checkpoints persist: restoring it and resuming
// observation is indistinguishable from never having stopped.
type AggregateState struct {
	Total     int          `json:"total"`
	ACmin     WelfordState `json:"acmin"`
	TimeSec   WelfordState `json:"timeSec"`
	Flips     int          `json:"flips"`
	OneToZero int          `json:"oneToZero"`
	// FlipKeys is the sorted unique (die, row, bit) flip set.
	FlipKeys []uint64 `json:"flipKeys,omitempty"`
	// Fleet is the distribution-fold state of a fleet cell (nil for
	// dense grid cells, so every pre-fleet checkpoint — and every
	// default-grid checkpoint written today — serializes exactly as
	// before the fold abstraction existed).
	Fleet *FleetAggState `json:"fleet,omitempty"`
}

// State exports the aggregate for persistence. FlipKeys are sorted so
// the export is deterministic.
func (a *cellAggregate) State() AggregateState {
	st := AggregateState{
		Total:     a.total,
		ACmin:     WelfordState{N: a.acmin.n, Mean: a.acmin.mean, M2: a.acmin.m2, Min: a.acmin.min},
		TimeSec:   WelfordState{N: a.timeSec.n, Mean: a.timeSec.mean, M2: a.timeSec.m2, Min: a.timeSec.min},
		Flips:     a.flips,
		OneToZero: a.oneToZero,
	}
	if len(a.flipKeys) > 0 {
		st.FlipKeys = make([]uint64, 0, len(a.flipKeys))
		for k := range a.flipKeys {
			st.FlipKeys = append(st.FlipKeys, k)
		}
		sort.Slice(st.FlipKeys, func(i, j int) bool { return st.FlipKeys[i] < st.FlipKeys[j] })
	}
	return st
}

// aggregateFromState reconstructs an aggregate from persisted state.
func aggregateFromState(st AggregateState) *cellAggregate {
	a := &cellAggregate{
		total:     st.Total,
		acmin:     welford{n: st.ACmin.N, mean: st.ACmin.Mean, m2: st.ACmin.M2, min: st.ACmin.Min},
		timeSec:   welford{n: st.TimeSec.N, mean: st.TimeSec.Mean, m2: st.TimeSec.M2, min: st.TimeSec.Min},
		flips:     st.Flips,
		oneToZero: st.OneToZero,
		flipKeys:  make(map[uint64]struct{}, len(st.FlipKeys)),
	}
	for _, k := range st.FlipKeys {
		a.flipKeys[k] = struct{}{}
	}
	return a
}

// MergeAggregates fuses two cell aggregates, as when two shards (or a
// checkpoint and a live run) both contributed observations to the same
// cell. Merging with an empty aggregate returns the other side
// bit-identically; merging two non-empty halves of one observation
// stream matches the sequential fold up to float rounding. ShardPlan
// partitions at cell granularity precisely so that campaign merges only
// ever hit the exact path.
func MergeAggregates(a, b AggregateState) AggregateState {
	if a.Total == 0 {
		return b
	}
	if b.Total == 0 {
		return a
	}
	if a.Fleet != nil || b.Fleet != nil {
		return mergeFleetStates(a, b)
	}
	ma, mb := aggregateFromState(a), aggregateFromState(b)
	ma.total += mb.total
	ma.acmin.merge(mb.acmin)
	ma.timeSec.merge(mb.timeSec)
	ma.flips += mb.flips
	ma.oneToZero += mb.oneToZero
	for k := range mb.flipKeys {
		ma.flipKeys[k] = struct{}{}
	}
	return ma.State()
}

// Total reports the number of observations folded in (Fold).
func (a *cellAggregate) Total() int { return a.total }

// Observe folds one row measurement into the aggregate (Fold).
func (a *cellAggregate) Observe(die int, rr RowResult) {
	a.total++
	if rr.NoBitflip {
		return
	}
	a.acmin.add(float64(rr.ACmin))
	a.timeSec.add(rr.TimeToFirst.Seconds())
	for _, f := range rr.Flips {
		a.flips++
		if f.Dir == device.OneToZero {
			a.oneToZero++
		}
		key := uint64(die)<<40 | uint64(f.Row)<<13 | uint64(f.Bit)
		a.flipKeys[key] = struct{}{}
	}
}
