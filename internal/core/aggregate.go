package core

import (
	"math"

	"rowfuse/internal/device"
)

// welford is an online mean/variance/min accumulator (Welford's
// algorithm), used so module-scale studies aggregate observations in
// O(1) memory instead of retaining every row result.
type welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
}

func (w *welford) add(v float64) {
	w.n++
	if w.n == 1 || v < w.min {
		w.min = v
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

func (w *welford) stats(total int) Stats {
	st := Stats{N: w.n, Total: total}
	if w.n == 0 {
		return st
	}
	st.Mean = w.mean
	st.Min = w.min
	if w.n > 1 {
		st.Std = math.Sqrt(w.m2 / float64(w.n-1))
	}
	return st
}

// cellAggregate accumulates one (module, pattern, tAggON) cell's
// observations incrementally.
type cellAggregate struct {
	total     int
	acmin     welford
	timeSec   welford
	flips     int
	oneToZero int
	flipKeys  map[uint64]struct{}
}

func newCellAggregate() *cellAggregate {
	return &cellAggregate{flipKeys: make(map[uint64]struct{})}
}

// observe folds one row measurement into the aggregate.
func (a *cellAggregate) observe(die int, rr RowResult) {
	a.total++
	if rr.NoBitflip {
		return
	}
	a.acmin.add(float64(rr.ACmin))
	a.timeSec.add(rr.TimeToFirst.Seconds())
	for _, f := range rr.Flips {
		a.flips++
		if f.Dir == device.OneToZero {
			a.oneToZero++
		}
		key := uint64(die)<<40 | uint64(f.Row)<<13 | uint64(f.Bit)
		a.flipKeys[key] = struct{}{}
	}
}
