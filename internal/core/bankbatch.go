// Integer-stepping bulk fast-forward for the bank engine.
//
// bulkIterations (bankfast.go) re-derives each steady delta's ulp
// decomposition with float divides, floors and Ldexp scalings on every
// binade the accumulator climbs through. But the decomposition is pure
// bit surgery: a delta d = md * 2^(ed-1075) splits against an
// accumulator binade of exponent e into quotient md>>s and remainder
// md&(2^s-1) with s = e - ed, and the round direction is one integer
// compare against the half-ulp bit 2^(s-1). bankSolve projects a whole
// damage profile's steady deltas into (mantissa, exponent) form once
// per characterization, and bulkIterationsPre replays bulkIterations'
// exact decision procedure on the projected integers — same fallback
// triggers, same advance count, same composed accumulator bits — with
// no float arithmetic at all.
//
// The projection rejects profiles containing a negative, NaN or
// infinite steady delta (the damage model produces none); fastForward
// then keeps the float reference path for the whole profile. purego
// builds (bankFastEnabled = false) always run the float reference,
// which the parity fuzz test pins the integer path to.

package core

import "math"

// bankSolve holds one damage profile's steady deltas in projected
// integer form, cell-major like DamageProfile.Steady: md is the
// mantissa with the implicit bit ORed in for normal values, ed the
// effective biased exponent (1 for subnormals, whose scale matches the
// lowest normal binade). It lives on the BankEngine so steady-state
// characterizations do not allocate.
type bankSolve struct {
	md []uint64
	ed []int32
}

// project decomposes every steady delta of a profile. It reports false
// — leaving the caller on the float reference path — if any delta is
// negative (including -0), NaN or infinite.
func (s *bankSolve) project(steady []float64) bool {
	n := len(steady)
	if cap(s.md) < n {
		s.md = make([]uint64, n)
		s.ed = make([]int32, n)
	}
	s.md, s.ed = s.md[:n], s.ed[:n]
	for i, d := range steady {
		bits := math.Float64bits(d)
		exp := int32(bits >> 52 & 0x7ff)
		if bits>>63 != 0 || exp == 0x7ff {
			return false
		}
		m := bits & (1<<52 - 1)
		if exp == 0 {
			exp = 1 // subnormal: same scale as the lowest normal binade
		} else {
			m |= 1 << 52
		}
		s.md[i], s.ed[i] = m, exp
	}
	return true
}

// bulkIterationsPre is bulkIterations over a projected delta row: the
// same closed-form advance, the same fallback conditions (accumulator
// at or below the lowest normal binade, a delta reaching the next
// binade in one add, an exact half-ulp remainder), the same cap
// keeping every intermediate true sum inside the binade — decided with
// integer shifts and compares instead of float divides and Ldexp.
//
// capped reports that the advance stopped at the binade's room rather
// than at maxK. The leftover room is then provably under one
// iteration's increment (room mod t < t), so re-probing before the
// boundary single-step would always return k = 0 — callers go
// straight to the single-step instead.
func bulkIterationsPre(acc float64, md []uint64, ed []int32, maxK int64) (next float64, k int64, capped bool) {
	bits := math.Float64bits(acc)
	exp := int32(bits >> 52 & 0x7ff)
	// The sign guard is unreachable for real damage trajectories
	// (deltas are non-negative, accumulators start at 0) and falls
	// back to exact single-stepping rather than mis-composing a
	// negative accumulator's bits.
	if exp <= 1 || exp == 0x7ff || bits>>63 != 0 {
		return acc, 0, false
	}
	m := int64(1)<<52 | int64(bits&(1<<52-1))
	ed = ed[:len(md)]
	var t int64
	for i, mv := range md {
		s := exp - ed[i]
		if uint32(s-1) < 53 { // 1 <= s <= 53, the common case
			half := uint64(1) << (s - 1)
			rb := mv & (half<<1 - 1)
			q := int64(mv >> s)
			if rb > half {
				q++
			} else if rb == half {
				// Exact half ulp: round-half-even depends on mantissa
				// parity, which varies step to step.
				return acc, 0, false
			}
			t += q
		} else if s >= 54 {
			// The delta is under half an ulp: every add rounds to a
			// no-op for this delta.
		} else if s < 0 {
			return acc, 0, false // a single add exits the binade
		} else {
			t += int64(mv) // s == 0: the delta is a whole number of ulps
		}
	}
	if t == 0 {
		// Every add rounds to a no-op; the accumulator never moves
		// again in this binade.
		return acc, maxK, false
	}
	room := (int64(1)<<53 - 1) - int64(len(md)) - 1 - m
	k = room / t
	if k >= maxK {
		k = maxK
	} else {
		capped = true
	}
	if k <= 0 {
		return acc, 0, false
	}
	// m+k*t stays in [2^52, 2^53), so masking off the implicit bit and
	// keeping the binade exponent composes exactly the float64 that
	// Ldexp(float64(m+k*t), exp-1075) would build.
	return math.Float64frombits(uint64(exp)<<52 | uint64(m+k*t)&(1<<52-1)), k, capped
}

// flipIterationPre is flipIteration with the bulk advance running on
// the projected deltas; the warm-up first iteration and the fallback
// single-steps still use the real float additions.
func flipIterationPre(first, steady []float64, md []uint64, ed []int32, maxIters int64) (int64, bool) {
	if maxIters <= 0 {
		return 0, false
	}
	acc := 0.0
	for _, d := range first {
		acc += d
		if acc >= 1 {
			return 1, true
		}
	}
	for iter := int64(2); iter <= maxIters; {
		if next, k, capped := bulkIterationsPre(acc, md, ed, maxIters-iter+1); k > 0 {
			acc = next
			iter += k
			if !capped || iter > maxIters {
				continue
			}
			// Room-capped: fall through to the boundary single-step
			// without the provably fruitless re-probe.
		}
		prev := acc
		for _, d := range steady {
			acc += d
			if acc >= 1 {
				return iter, true
			}
		}
		if acc == prev {
			return 0, false
		}
		iter++
	}
	return 0, false
}

// accAfterPre is accAfter with the bulk advance running on the
// projected deltas.
func accAfterPre(first, steady []float64, md []uint64, ed []int32, iters int64) float64 {
	if iters <= 0 {
		return 0
	}
	acc := 0.0
	for _, d := range first {
		acc += d
	}
	for done := int64(1); done < iters; {
		if next, k, capped := bulkIterationsPre(acc, md, ed, iters-done); k > 0 {
			acc = next
			done += k
			if !capped || done >= iters {
				continue
			}
		}
		prev := acc
		for _, d := range steady {
			acc += d
		}
		if acc == prev {
			return acc
		}
		done++
	}
	return acc
}
