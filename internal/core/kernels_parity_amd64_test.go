//go:build amd64 && !purego

package core

import "rowfuse/internal/cpu"

// vectorKernelsUnderTest enumerates every vector kernel compiled into
// this binary that the running CPU can execute, so the parity tests
// cover AVX-512 even though pickDamageKernels prefers AVX2.
func vectorKernelsUnderTest() []kernelUnderTest {
	var ks []kernelUnderTest
	if cpu.X86.HasAVX2 {
		ks = append(ks, kernelUnderTest{"avx2", damageSplitAVX2, damageFusedAVX2})
	}
	if cpu.X86.HasAVX512 {
		ks = append(ks, kernelUnderTest{"avx512", damageSplitAVX512, damageFusedAVX512})
	}
	return ks
}
