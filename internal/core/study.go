package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// StudyConfig configures a full characterization campaign across modules,
// patterns and tAggON values.
type StudyConfig struct {
	// Modules is the DIMM set (default: the full Table 1 inventory).
	Modules []chipdb.ModuleInfo
	// Params are the disturbance model constants (default calibrated).
	Params device.DisturbParams
	// Timings is the DDR4 timing set (default timing.Default()).
	Timings timing.Set
	// Sweep is the list of tAggON values (default timing.PaperSweep()).
	Sweep []time.Duration
	// Patterns lists the pattern families (default all three).
	Patterns []pattern.Kind
	// RowsPerRegion is the victim sample per bank region; the paper
	// uses 1000 (x3 regions = 3K rows). Defaults to 1000.
	RowsPerRegion int
	// Dies limits how many dies per module are characterized
	// (0 = all dies, as in the paper).
	Dies int
	// Runs is the repeat count per measurement (paper: 3).
	Runs int
	// Bank is the bank under test (the paper picks one arbitrary bank).
	Bank int
	// Opts are the per-row run options (budget, data pattern, temp).
	Opts RunOpts
	// Concurrency bounds the worker pool (default GOMAXPROCS).
	Concurrency int
	// KeepObservations retains every raw RowObservation on the
	// ModuleResult (memory-heavy at paper scale; the figure and table
	// extractors only need the incremental aggregates). Raw
	// observations are not part of the checkpointable aggregate state:
	// cells restored via Seed have empty Rows (see Snapshot).
	KeepObservations bool
	// Progress, when set, is invoked after each completed cell with the
	// done and total cell counts (called from worker goroutines; must be
	// safe for concurrent use).
	Progress func(done, total int)
	// Shard restricts Run to a deterministic subset of the cell grid so
	// independent processes can split one campaign (zero = all cells).
	Shard ShardPlan
	// Checkpoint, when set, receives a consistent snapshot of every
	// completed cell after each CheckpointEvery completions and once
	// more when Run finishes. Returning an error aborts the run.
	Checkpoint func(cells map[CellKey]AggregateState) error
	// CheckpointEvery is the checkpoint cadence in completed cells
	// (default 16; only meaningful with Checkpoint set).
	CheckpointEvery int
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Modules == nil {
		c.Modules = chipdb.Modules()
	}
	if c.Params == (device.DisturbParams{}) {
		c.Params = device.DefaultParams()
	}
	if c.Timings == (timing.Set{}) {
		c.Timings = timing.Default()
	}
	if c.Sweep == nil {
		c.Sweep = timing.PaperSweep()
	}
	if c.Patterns == nil {
		c.Patterns = []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined}
	}
	if c.RowsPerRegion == 0 {
		c.RowsPerRegion = 1000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Concurrency == 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	c.Opts = c.Opts.withDefaults()
	return c
}

// RowObservation is one row measurement with its die and repeat indices.
type RowObservation struct {
	Die int
	Run int
	RowResult
}

// ModuleResult aggregates the observations of one (module, pattern,
// tAggON) cell. Aggregation is incremental (constant memory per cell);
// raw observations are retained only with StudyConfig.KeepObservations.
type ModuleResult struct {
	Info chipdb.ModuleInfo
	Spec pattern.Spec
	// Rows holds the raw observations when KeepObservations is set.
	Rows []RowObservation

	agg *cellAggregate
}

// Stats is a mean/min/std summary of a per-row metric.
type Stats struct {
	Mean float64
	Min  float64
	Std  float64
	// N is the number of observations that flipped.
	N int
	// Total is the number of observations attempted.
	Total int
}

// Flipped reports whether at least one observation produced a bitflip
// ("No Bitflip" in Table 2 corresponds to Flipped() == false).
func (s Stats) Flipped() bool { return s.N > 0 }

func summarize(values []float64, total int) Stats {
	st := Stats{N: len(values), Total: total}
	if len(values) == 0 {
		return st
	}
	st.Min = values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
	}
	st.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = 0
	if len(values) > 1 {
		st.Std = math.Sqrt(ss / float64(len(values)-1))
	}
	return st
}

// Observations returns the number of row measurements folded into the
// cell.
func (r *ModuleResult) Observations() int { return r.agg.total }

// ACminStats summarizes ACmin across flipped observations.
func (r *ModuleResult) ACminStats() Stats {
	return r.agg.acmin.stats(r.agg.total)
}

// TimeStats summarizes time-to-first-bitflip (in seconds) across flipped
// observations.
func (r *ModuleResult) TimeStats() Stats {
	return r.agg.timeSec.stats(r.agg.total)
}

// OneToZeroFraction returns the fraction of observed bitflips with 1->0
// direction, and the flip count.
func (r *ModuleResult) OneToZeroFraction() (float64, int) {
	if r.agg.flips == 0 {
		return 0, 0
	}
	return float64(r.agg.oneToZero) / float64(r.agg.flips), r.agg.flips
}

// FlipKeys returns the set of unique bitflips across all observations,
// keyed by (die, row, bit). The returned map is the aggregate's own
// storage; callers must not mutate it.
func (r *ModuleResult) FlipKeys() map[uint64]struct{} {
	return r.agg.flipKeys
}

// Study runs and caches a characterization campaign.
type Study struct {
	cfg StudyConfig

	mu      sync.Mutex
	results map[CellKey]*ModuleResult
}

// NewStudy builds a study with defaults applied.
func NewStudy(cfg StudyConfig) *Study {
	return &Study{
		cfg:     cfg.withDefaults(),
		results: make(map[CellKey]*ModuleResult),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Study) Config() StudyConfig { return s.cfg }

// Run executes every (module, pattern, tAggON) cell of this study's
// shard on a bounded worker pool, skipping cells already present (for
// example after Seed restored them from a checkpoint). It is safe to
// call once; results are cached for the figure and table extractors.
func (s *Study) Run(ctx context.Context) error {
	if err := s.cfg.Shard.Validate(); err != nil {
		return err
	}
	type task struct {
		mi    chipdb.ModuleInfo
		kind  pattern.Kind
		aggOn time.Duration
	}
	byID := make(map[string]chipdb.ModuleInfo, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		byID[mi.ID] = mi
	}
	// Cells() is the one source of truth for the grid order shard
	// indices refer to; every process of a campaign must agree on it.
	var tasks []task
	for idx, key := range s.Cells() {
		if !s.cfg.Shard.Contains(idx) {
			continue
		}
		if _, ok := s.Result(key.Module, key.Kind, key.AggOn); ok {
			continue // restored from a checkpoint
		}
		tasks = append(tasks, task{mi: byID[key.Module], kind: key.Kind, aggOn: key.AggOn})
	}

	// checkpoint snapshots completed cells; serialized so overlapping
	// triggers from the worker pool cannot interleave writes.
	var ckptMu sync.Mutex
	checkpoint := func() error {
		if s.cfg.Checkpoint == nil {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return s.cfg.Checkpoint(s.Snapshot())
	}

	taskCh := make(chan task)
	errCh := make(chan error, 1)
	var done atomic.Int64
	total := len(tasks)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				res, err := s.runCell(t.mi, t.kind, t.aggOn)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				s.mu.Lock()
				s.results[CellKey{t.mi.ID, t.kind, t.aggOn}] = res
				s.mu.Unlock()
				n := int(done.Add(1))
				if s.cfg.Progress != nil {
					s.cfg.Progress(n, total)
				}
				if s.cfg.Checkpoint != nil && n%s.cfg.CheckpointEvery == 0 && n < total {
					if err := checkpoint(); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}
		}()
	}

feed:
	for _, t := range tasks {
		select {
		case taskCh <- t:
		case <-ctx.Done():
			break feed
		case err := <-errCh:
			close(taskCh)
			wg.Wait()
			return err
		}
	}
	close(taskCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Final checkpoint: the shard's complete state in one file.
	return checkpoint()
}

// Snapshot exports the aggregate state of every completed cell. The
// snapshot is consistent (taken under the results lock) and safe to
// serialize concurrently with an ongoing Run. Only the mergeable
// aggregates are exported: raw observations kept under
// KeepObservations do not survive a Snapshot/Seed round trip (restored
// cells report Observations() > 0 with empty Rows).
func (s *Study) Snapshot() map[CellKey]AggregateState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[CellKey]AggregateState, len(s.results))
	for k, r := range s.results {
		out[k] = r.agg.State()
	}
	return out
}

// Seed restores cells from persisted aggregate state, as when resuming
// from a checkpoint or fusing shard checkpoints. Every key must lie on
// this study's cell grid (callers are expected to have verified the
// config fingerprint first). Seeding a cell that already has results
// merges the two aggregates. Restored cells carry aggregates only —
// raw rows kept under KeepObservations are not persisted, so their
// Rows slice stays empty.
func (s *Study) Seed(cells map[CellKey]AggregateState) error {
	byID := make(map[string]chipdb.ModuleInfo, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		byID[mi.ID] = mi
	}
	inSweep := make(map[time.Duration]bool, len(s.cfg.Sweep))
	for _, t := range s.cfg.Sweep {
		inSweep[t] = true
	}
	inPatterns := make(map[pattern.Kind]bool, len(s.cfg.Patterns))
	for _, k := range s.cfg.Patterns {
		inPatterns[k] = true
	}
	for key, st := range cells {
		mi, ok := byID[key.Module]
		if !ok {
			return fmt.Errorf("core: seed cell %v: module not in study config", key)
		}
		if !inPatterns[key.Kind] || !inSweep[key.AggOn] {
			return fmt.Errorf("core: seed cell %v: not on the study's cell grid", key)
		}
		spec, err := pattern.New(key.Kind, key.AggOn, s.cfg.Timings)
		if err != nil {
			return fmt.Errorf("core: seed cell %v: %w", key, err)
		}
		s.mu.Lock()
		if prev, ok := s.results[key]; ok {
			st = MergeAggregates(prev.agg.State(), st)
		}
		s.results[key] = &ModuleResult{Info: mi, Spec: spec, agg: aggregateFromState(st)}
		s.mu.Unlock()
	}
	return nil
}

// runCell characterizes one (module, pattern, tAggON) combination across
// dies, rows and repeats.
func (s *Study) runCell(mi chipdb.ModuleInfo, kind pattern.Kind, aggOn time.Duration) (*ModuleResult, error) {
	spec, err := pattern.New(kind, aggOn, s.cfg.Timings)
	if err != nil {
		return nil, fmt.Errorf("module %s: %w", mi.ID, err)
	}
	numRows, rowBytes := mi.Geometry()
	rows := PaperRows(numRows, s.cfg.RowsPerRegion)
	profile := mi.Profile(s.cfg.Params)

	dies := mi.NumChips
	if s.cfg.Dies > 0 && s.cfg.Dies < dies {
		dies = s.cfg.Dies
	}

	res := &ModuleResult{Info: mi, Spec: spec, agg: newCellAggregate()}
	for die := 0; die < dies; die++ {
		eng, err := NewAnalyticEngine(AnalyticConfig{
			Profile:  device.DieProfile(profile, die),
			Params:   s.cfg.Params,
			Bank:     s.cfg.Bank,
			NumRows:  numRows,
			RowBytes: rowBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("module %s die %d: %w", mi.ID, die, err)
		}
		for run := 0; run < s.cfg.Runs; run++ {
			opts := s.cfg.Opts
			opts.Run = int64(run)
			for _, victim := range rows {
				rr, err := eng.CharacterizeRow(victim, spec, opts)
				if err != nil {
					return nil, fmt.Errorf("module %s die %d row %d: %w", mi.ID, die, victim, err)
				}
				res.agg.observe(die, rr)
				if s.cfg.KeepObservations {
					res.Rows = append(res.Rows, RowObservation{Die: die, Run: run, RowResult: rr})
				}
			}
		}
	}
	return res, nil
}

// Result returns the cached cell for (moduleID, kind, aggOn).
func (s *Study) Result(moduleID string, kind pattern.Kind, aggOn time.Duration) (*ModuleResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[CellKey{moduleID, kind, aggOn}]
	return r, ok
}

// mustResult is Result for internal extractors that know the cell exists.
func (s *Study) mustResult(moduleID string, kind pattern.Kind, aggOn time.Duration) (*ModuleResult, error) {
	r, ok := s.Result(moduleID, kind, aggOn)
	if !ok {
		return nil, fmt.Errorf("core: study has no result for %s/%s/%v (was Run called with it in the sweep?)",
			moduleID, kind.Short(), aggOn)
	}
	return r, nil
}

// SweepSorted returns the study's tAggON sweep in ascending order.
func (s *Study) SweepSorted() []time.Duration {
	sw := make([]time.Duration, len(s.cfg.Sweep))
	copy(sw, s.cfg.Sweep)
	sort.Slice(sw, func(i, j int) bool { return sw[i] < sw[j] })
	return sw
}
