package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// StudyConfig configures a full characterization campaign across modules,
// patterns and tAggON values.
type StudyConfig struct {
	// Modules is the DIMM set (default: the full Table 1 inventory).
	Modules []chipdb.ModuleInfo
	// Params are the disturbance model constants (default calibrated).
	Params device.DisturbParams
	// Timings is the DDR4 timing set (default timing.Default()).
	Timings timing.Set
	// Sweep is the list of tAggON values (default timing.PaperSweep()).
	Sweep []time.Duration
	// Patterns lists the pattern families (default all three).
	Patterns []pattern.Kind
	// RowsPerRegion is the victim sample per bank region; the paper
	// uses 1000 (x3 regions = 3K rows). Defaults to 1000.
	RowsPerRegion int
	// Dies limits how many dies per module are characterized
	// (0 = all dies, as in the paper).
	Dies int
	// Runs is the repeat count per measurement (paper: 3).
	Runs int
	// Bank is the bank under test (the paper picks one arbitrary bank).
	Bank int
	// Fleet, when non-nil, turns the campaign into a synthetic-fleet
	// study: the module axis becomes chip blocks drawn from a
	// chipdb.PopulationModel and every cell folds into a bounded
	// distribution sketch instead of the dense grid aggregate.
	// Modules is ignored as a grid axis (the population model is
	// calibrated against the full Table 2 inventory regardless).
	Fleet *FleetPlan
	// Scenarios is the scenario axis of the grid: engine selection and
	// operating-condition overrides per cell (nil or a single default
	// scenario = the classic module x pattern x tAggON grid, hashed,
	// keyed and checkpointed exactly as before the axis existed).
	// Non-default scenarios need unique, non-empty IDs.
	Scenarios []Scenario
	// Opts are the per-row run options (budget, data pattern, temp).
	// Scenarios may override Data and TempC per cell.
	Opts RunOpts
	// Concurrency bounds the worker pool (default GOMAXPROCS).
	Concurrency int
	// KeepObservations retains every raw RowObservation on the
	// ModuleResult (memory-heavy at paper scale; the figure and table
	// extractors only need the incremental aggregates). Raw
	// observations are not part of the checkpointable aggregate state:
	// cells restored via Seed have empty Rows (see Snapshot).
	KeepObservations bool
	// Progress, when set, is invoked after each completed cell with the
	// done and total cell counts (called from worker goroutines; must be
	// safe for concurrent use).
	Progress func(done, total int)
	// Shard restricts Run to a deterministic subset of the cell grid so
	// independent processes can split one campaign (zero = all cells).
	Shard ShardPlan
	// CellIndices, when non-nil, restricts Run to an explicit set of
	// grid cell indices (positions in Cells() order) instead of Shard's
	// arithmetic partition. Dynamic dispatchers use it to run
	// cost-rebalanced work units whose cell sets no longer follow any
	// i/n plan. Like Shard, it is an execution detail excluded from the
	// config fingerprint.
	CellIndices []int
	// Checkpoint, when set, receives a consistent snapshot of every
	// completed cell after each CheckpointEvery completions and once
	// more when Run finishes. Returning an error aborts the run.
	Checkpoint func(cells map[CellKey]AggregateState) error
	// CheckpointEvery is the checkpoint cadence in completed cells
	// (default 16; only meaningful with Checkpoint set).
	CheckpointEvery int
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Modules == nil {
		c.Modules = chipdb.Modules()
	}
	if c.Params == (device.DisturbParams{}) {
		c.Params = device.DefaultParams()
	}
	if c.Timings == (timing.Set{}) {
		c.Timings = timing.Default()
	}
	if c.Sweep == nil {
		c.Sweep = timing.PaperSweep()
	}
	if c.Patterns == nil {
		c.Patterns = []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined}
	}
	if c.RowsPerRegion == 0 {
		c.RowsPerRegion = 1000
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Concurrency == 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	if c.Fleet != nil {
		f := c.Fleet.withDefaults()
		c.Fleet = &f
	}
	c.Opts = c.Opts.withDefaults()
	return c
}

// RowObservation is one row measurement with its die and repeat indices.
type RowObservation struct {
	Die int
	Run int
	RowResult
}

// ModuleResult aggregates the observations of one (module, pattern,
// tAggON) cell. Aggregation is incremental (constant memory per cell);
// raw observations are retained only with StudyConfig.KeepObservations.
type ModuleResult struct {
	Info chipdb.ModuleInfo
	Spec pattern.Spec
	// Rows holds the raw observations when KeepObservations is set.
	Rows []RowObservation

	// agg is the cell's fold: a dense grid aggregate for module
	// cells, a distribution sketch for fleet cells.
	agg Fold
}

// gridAgg returns the dense grid aggregate behind this cell, or an
// empty one for fleet cells (whose per-row stats the grid extractors
// never consume — fleet campaigns report through FleetStats).
func (r *ModuleResult) gridAgg() *cellAggregate {
	if a, ok := r.agg.(*cellAggregate); ok {
		return a
	}
	return newCellAggregate()
}

// Stats is a mean/min/std summary of a per-row metric.
type Stats struct {
	Mean float64
	Min  float64
	Std  float64
	// N is the number of observations that flipped.
	N int
	// Total is the number of observations attempted.
	Total int
}

// Flipped reports whether at least one observation produced a bitflip
// ("No Bitflip" in Table 2 corresponds to Flipped() == false).
func (s Stats) Flipped() bool { return s.N > 0 }

func summarize(values []float64, total int) Stats {
	st := Stats{N: len(values), Total: total}
	if len(values) == 0 {
		return st
	}
	st.Min = values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
	}
	st.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = 0
	if len(values) > 1 {
		st.Std = math.Sqrt(ss / float64(len(values)-1))
	}
	return st
}

// Observations returns the number of row measurements folded into the
// cell.
func (r *ModuleResult) Observations() int { return r.agg.Total() }

// ACminStats summarizes ACmin across flipped observations.
func (r *ModuleResult) ACminStats() Stats {
	a := r.gridAgg()
	return a.acmin.stats(a.total)
}

// TimeStats summarizes time-to-first-bitflip (in seconds) across flipped
// observations.
func (r *ModuleResult) TimeStats() Stats {
	a := r.gridAgg()
	return a.timeSec.stats(a.total)
}

// OneToZeroFraction returns the fraction of observed bitflips with 1->0
// direction, and the flip count.
func (r *ModuleResult) OneToZeroFraction() (float64, int) {
	a := r.gridAgg()
	if a.flips == 0 {
		return 0, 0
	}
	return float64(a.oneToZero) / float64(a.flips), a.flips
}

// FlipKeys returns the set of unique bitflips across all observations,
// keyed by (die, row, bit). The returned map is the aggregate's own
// storage; callers must not mutate it.
func (r *ModuleResult) FlipKeys() map[uint64]struct{} {
	return r.gridAgg().flipKeys
}

// Study runs and caches a characterization campaign.
type Study struct {
	cfg StudyConfig

	mu      sync.Mutex
	results map[CellKey]*ModuleResult
	// unavailable marks cells whose results will never arrive (the
	// cells of quarantined campaign units); see SetUnavailable.
	unavailable map[CellKey]bool
}

// NewStudy builds a study with defaults applied.
func NewStudy(cfg StudyConfig) *Study {
	return &Study{
		cfg:     cfg.withDefaults(),
		results: make(map[CellKey]*ModuleResult),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Study) Config() StudyConfig { return s.cfg }

// cellJob is one (module, pattern, tAggON) cell of a run, split into
// per-die work units so fat cells (8/16-die modules) spread across the
// worker pool instead of serializing behind one worker.
type cellJob struct {
	key      CellKey
	mi       chipdb.ModuleInfo
	spec     pattern.Spec
	profile  device.Profile // module-level; DieProfile is applied per die
	rows     []int
	numRows  int
	rowBytes int
	dies     int
	// scenario is the cell's point on the scenario axis and opts the
	// study RunOpts with the scenario's overrides already resolved
	// (thermal settle included).
	scenario Scenario
	opts     RunOpts

	// pending counts die units still running; the worker that drops it
	// to zero folds dieObs into the cell's aggregate.
	pending atomic.Int32
	// dieObs holds each die's observations in (run, row) order, so the
	// final fold (die, run, row) replays the exact observation order of
	// a sequential run and the aggregate state stays byte-identical.
	dieObs [][]RowObservation
}

// dieTask is one schedulable work unit: one die of one cell.
type dieTask struct {
	job *cellJob
	die int
}

// popCacheKey scopes a shared base-population cache to one (module, die).
type popCacheKey struct {
	module string
	die    int
}

// popCaches hands the per-die engines of one (module, die) a shared
// device.PopulationCache and drops it as soon as the last cell
// referencing it completes, so campaign memory stays bounded by the
// number of module-dies in flight rather than the whole inventory.
type popCaches struct {
	mu      sync.Mutex
	entries map[popCacheKey]*popCacheEntry
}

type popCacheEntry struct {
	cache *device.PopulationCache
	refs  int
}

// acquire returns the (module, die) cache, creating it with refs
// references on first touch.
func (p *popCaches) acquire(key popCacheKey, refs int, mk func() *device.PopulationCache) *device.PopulationCache {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok {
		e = &popCacheEntry{cache: mk(), refs: refs}
		p.entries[key] = e
	}
	return e.cache
}

// release drops one reference, freeing the cache at zero.
func (p *popCaches) release(key popCacheKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[key]; ok {
		if e.refs--; e.refs <= 0 {
			delete(p.entries, key)
		}
	}
}

// Run executes every (module, pattern, tAggON) cell of this study's
// shard on a bounded worker pool, skipping cells already present (for
// example after Seed restored them from a checkpoint). Each cell is
// split into per-die work units; a cell completes (for progress and
// checkpoint purposes) when all of its dies have been folded in. It is
// safe to call once; results are cached for the figure and table
// extractors.
func (s *Study) Run(ctx context.Context) error {
	if err := s.cfg.Shard.Validate(); err != nil {
		return err
	}
	if err := s.cfg.validateScenarios(); err != nil {
		return err
	}
	if s.cfg.Fleet != nil {
		return s.runFleet(ctx)
	}
	byID := make(map[string]chipdb.ModuleInfo, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		byID[mi.ID] = mi
	}
	// Resolve each scenario's effective RunOpts once (a thermal settle
	// runs a whole control loop; cells of the same scenario share it).
	scByID := make(map[string]Scenario)
	optsByID := make(map[string]RunOpts)
	for _, sc := range s.cfg.scenarios() {
		opts, err := sc.resolveOpts(s.cfg.Opts)
		if err != nil {
			return err
		}
		scByID[sc.ID] = sc
		optsByID[sc.ID] = opts
	}
	// Cells() is the one source of truth for the grid order shard
	// indices refer to; every process of a campaign must agree on it.
	grid := s.Cells()
	selected, err := s.selectCells(grid)
	if err != nil {
		return err
	}
	var jobs []*cellJob
	// cellsPerModule counts only analytic-engine cells: it seeds the
	// population-cache refcounts, and bank-backed scenario engines
	// never touch the cache.
	cellsPerModule := make(map[string]int)
	for idx, key := range grid {
		if !selected(idx) {
			continue
		}
		if _, ok := s.ResultCell(key); ok {
			continue // restored from a checkpoint
		}
		mi := byID[key.Module]
		spec, err := pattern.New(key.Kind, key.AggOn, s.cfg.Timings)
		if err != nil {
			return fmt.Errorf("module %s: %w", mi.ID, err)
		}
		numRows, rowBytes := mi.Geometry()
		dies := mi.NumChips
		if s.cfg.Dies > 0 && s.cfg.Dies < dies {
			dies = s.cfg.Dies
		}
		job := &cellJob{
			key:      key,
			mi:       mi,
			spec:     spec,
			profile:  mi.Profile(s.cfg.Params),
			rows:     PaperRows(numRows, s.cfg.RowsPerRegion),
			numRows:  numRows,
			rowBytes: rowBytes,
			dies:     dies,
			scenario: scByID[key.Scenario],
			opts:     optsByID[key.Scenario],
			dieObs:   make([][]RowObservation, dies),
		}
		job.pending.Store(int32(dies))
		jobs = append(jobs, job)
		if job.scenario.usesAnalytic() {
			cellsPerModule[key.Module]++
		}
	}
	var tasks []dieTask
	for _, job := range jobs {
		for die := 0; die < job.dies; die++ {
			tasks = append(tasks, dieTask{job: job, die: die})
		}
	}
	pops := &popCaches{entries: make(map[popCacheKey]*popCacheEntry)}

	// checkpoint snapshots completed cells; serialized so overlapping
	// triggers from the worker pool cannot interleave writes.
	var ckptMu sync.Mutex
	checkpoint := func() error {
		if s.cfg.Checkpoint == nil {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return s.cfg.Checkpoint(s.Snapshot())
	}

	taskCh := make(chan dieTask)
	errCh := make(chan error, 1)
	var done atomic.Int64
	total := len(jobs)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				job := t.job
				var cache *device.PopulationCache
				cacheKey := popCacheKey{module: job.mi.ID, die: t.die}
				if job.scenario.usesAnalytic() {
					cache = pops.acquire(cacheKey, cellsPerModule[job.mi.ID], func() *device.PopulationCache {
						return device.NewPopulationCache(
							device.DieProfile(job.profile, t.die), s.cfg.Params, s.cfg.Bank, job.rowBytes*8)
					})
				}
				obs, err := s.runCellDie(job, t.die, cache)
				if cache != nil {
					pops.release(cacheKey)
				}
				if err != nil {
					fail(err)
					return
				}
				job.dieObs[t.die] = obs
				if job.pending.Add(-1) != 0 {
					continue
				}
				res := s.finishCell(job)
				s.mu.Lock()
				s.results[job.key] = res
				s.mu.Unlock()
				n := int(done.Add(1))
				if s.cfg.Progress != nil {
					s.cfg.Progress(n, total)
				}
				if s.cfg.Checkpoint != nil && n%s.cfg.CheckpointEvery == 0 && n < total {
					if err := checkpoint(); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}

feed:
	for _, t := range tasks {
		select {
		case taskCh <- t:
		case <-ctx.Done():
			break feed
		case err := <-errCh:
			close(taskCh)
			wg.Wait()
			return err
		}
	}
	close(taskCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Final checkpoint: the shard's complete state in one file.
	return checkpoint()
}

// selectCells resolves the run's cell filter: CellIndices when set,
// otherwise the shard plan's arithmetic partition. Both grid and
// fleet runs index the same Cells() order.
func (s *Study) selectCells(grid []CellKey) (func(int) bool, error) {
	if s.cfg.CellIndices == nil {
		return s.cfg.Shard.Contains, nil
	}
	in := make(map[int]bool, len(s.cfg.CellIndices))
	for _, idx := range s.cfg.CellIndices {
		if idx < 0 || idx >= len(grid) {
			return nil, fmt.Errorf("core: cell index %d outside the %d-cell grid", idx, len(grid))
		}
		in[idx] = true
	}
	return func(idx int) bool { return in[idx] }, nil
}

// Snapshot exports the aggregate state of every completed cell. The
// snapshot is consistent (taken under the results lock) and safe to
// serialize concurrently with an ongoing Run. Only the mergeable
// aggregates are exported: raw observations kept under
// KeepObservations do not survive a Snapshot/Seed round trip (restored
// cells report Observations() > 0 with empty Rows).
func (s *Study) Snapshot() map[CellKey]AggregateState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[CellKey]AggregateState, len(s.results))
	for k, r := range s.results {
		out[k] = r.agg.State()
	}
	return out
}

// Seed restores cells from persisted aggregate state, as when resuming
// from a checkpoint or fusing shard checkpoints. Every key must lie on
// this study's cell grid (callers are expected to have verified the
// config fingerprint first). Seeding a cell that already has results
// merges the two aggregates. Restored cells carry aggregates only —
// raw rows kept under KeepObservations are not persisted, so their
// Rows slice stays empty.
func (s *Study) Seed(cells map[CellKey]AggregateState) error {
	byID := make(map[string]chipdb.ModuleInfo, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		byID[mi.ID] = mi
	}
	inSweep := make(map[time.Duration]bool, len(s.cfg.Sweep))
	for _, t := range s.cfg.Sweep {
		inSweep[t] = true
	}
	inPatterns := make(map[pattern.Kind]bool, len(s.cfg.Patterns))
	for _, k := range s.cfg.Patterns {
		inPatterns[k] = true
	}
	inScenarios := make(map[string]bool)
	for _, sc := range s.cfg.scenarios() {
		inScenarios[sc.ID] = true
	}
	for key, st := range cells {
		mi, ok := byID[key.Module]
		switch {
		case s.cfg.Fleet != nil:
			block, blockOK := ParseFleetBlockID(key.Module)
			if !blockOK || block >= s.cfg.Fleet.Blocks() {
				return fmt.Errorf("core: seed cell %v: not a block of this fleet", key)
			}
			if st.Fleet == nil {
				return fmt.Errorf("core: seed cell %v: fleet campaign but non-fleet aggregate state", key)
			}
			mi = chipdb.ModuleInfo{ID: key.Module}
		case !ok:
			return fmt.Errorf("core: seed cell %v: module not in study config", key)
		case st.Fleet != nil:
			return fmt.Errorf("core: seed cell %v: fleet aggregate state on a grid campaign", key)
		}
		if !inPatterns[key.Kind] || !inSweep[key.AggOn] || !inScenarios[key.Scenario] {
			return fmt.Errorf("core: seed cell %v: not on the study's cell grid", key)
		}
		spec, err := pattern.New(key.Kind, key.AggOn, s.cfg.Timings)
		if err != nil {
			return fmt.Errorf("core: seed cell %v: %w", key, err)
		}
		s.mu.Lock()
		if prev, ok := s.results[key]; ok {
			st = MergeAggregates(prev.agg.State(), st)
		}
		fold, err := foldFromState(st)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("core: seed cell %v: %w", key, err)
		}
		s.results[key] = &ModuleResult{Info: mi, Spec: spec, agg: fold}
		s.mu.Unlock()
	}
	return nil
}

// runCellDie characterizes one die of one (module, pattern, tAggON,
// scenario) cell across rows and repeats. The analytic path iterates
// row-major so each row's cached base population (shared through cache
// across every cell of the same die) serves all repeats, but stores
// observations in (run, row) order so the final fold replays a
// sequential run's order exactly. Bank-backed scenario engines iterate
// run-major instead: each run gets a freshly built engine whose bank
// carries that run's noise seed (the bank ignores RunOpts.Run), stored
// in the same (run, row) slots.
func (s *Study) runCellDie(job *cellJob, die int, cache *device.PopulationCache) ([]RowObservation, error) {
	env := EngineEnv{
		Profile:  device.DieProfile(job.profile, die),
		Params:   s.cfg.Params,
		Timings:  s.cfg.Timings,
		Bank:     s.cfg.Bank,
		NumRows:  job.numRows,
		RowBytes: job.rowBytes,
		PopCache: cache,
	}
	runs := s.cfg.Runs
	obs := make([]RowObservation, runs*len(job.rows))
	opts := job.opts
	// arena backs the retained flip slices: engines reuse res.Flips, so
	// each observation's flips are copied out once, into one amortized
	// allocation instead of one per flipped row.
	var arena []device.Bitflip
	store := func(run, ri int, res *RowResult) {
		o := &obs[run*len(job.rows)+ri]
		o.Die = die
		o.Run = run
		o.RowResult = *res
		o.Flips = nil
		if n := len(res.Flips); n > 0 {
			start := len(arena)
			arena = append(arena, res.Flips...)
			o.Flips = arena[start : start+n : start+n]
		}
	}

	if job.scenario.usesAnalytic() {
		eng, err := NewAnalyticEngine(AnalyticConfig{
			Profile:  env.Profile,
			Params:   env.Params,
			Bank:     env.Bank,
			NumRows:  env.NumRows,
			RowBytes: env.RowBytes,
			PopCache: cache,
		})
		if err != nil {
			return nil, fmt.Errorf("module %s die %d: %w", job.mi.ID, die, err)
		}
		var res RowResult
		for ri, victim := range job.rows {
			for run := 0; run < runs; run++ {
				opts.Run = int64(run)
				if err := eng.CharacterizeRowInto(victim, job.spec, opts, &res); err != nil {
					return nil, fmt.Errorf("module %s die %d row %d: %w", job.mi.ID, die, victim, err)
				}
				store(run, ri, &res)
			}
		}
		return obs, nil
	}

	for run := 0; run < runs; run++ {
		env.Run = int64(run)
		eng, err := newScenarioEngine(env, job.scenario)
		if err != nil {
			return nil, fmt.Errorf("module %s die %d scenario %q: %w", job.mi.ID, die, job.key.Scenario, err)
		}
		opts.Run = int64(run)
		for ri, victim := range job.rows {
			res, err := eng.CharacterizeRow(victim, job.spec, opts)
			if err != nil {
				return nil, fmt.Errorf("module %s die %d scenario %q row %d: %w",
					job.mi.ID, die, job.key.Scenario, victim, err)
			}
			store(run, ri, &res)
		}
	}
	return obs, nil
}

// finishCell folds the per-die observations of a completed cell into
// its aggregate, in the (die, run, row) order a sequential run would
// have used, so checkpointed aggregate state is byte-identical to the
// pre-split scheduler's.
func (s *Study) finishCell(job *cellJob) *ModuleResult {
	res := &ModuleResult{Info: job.mi, Spec: job.spec, agg: newCellAggregate()}
	for _, dieObs := range job.dieObs {
		for i := range dieObs {
			o := &dieObs[i]
			res.agg.Observe(o.Die, o.RowResult)
			if s.cfg.KeepObservations {
				res.Rows = append(res.Rows, *o)
			}
		}
	}
	// The job (and the run's task list holding it) outlives the cell;
	// drop the folded observations so campaign memory stays bounded by
	// cells in flight, not cells completed.
	job.dieObs = nil
	return res
}

// Result returns the cached cell for (moduleID, kind, aggOn) on the
// study's primary scenario — the default scenario when configured,
// otherwise the first one. The table and figure extractors are built
// on it, so a default campaign renders exactly as before the scenario
// axis, a mitigation campaign renders its baseline, and a pure
// bender-trace campaign renders its only scenario. Use ResultCell for
// an explicit scenario.
func (s *Study) Result(moduleID string, kind pattern.Kind, aggOn time.Duration) (*ModuleResult, bool) {
	return s.ResultCell(CellKey{Module: moduleID, Kind: kind, AggOn: aggOn, Scenario: s.cfg.primaryScenarioID()})
}

// ResultCell returns the cached cell for an exact grid key, scenario
// included.
func (s *Study) ResultCell(key CellKey) (*ModuleResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[key]
	return r, ok
}

// mustResult is Result for internal extractors that know the cell exists.
func (s *Study) mustResult(moduleID string, kind pattern.Kind, aggOn time.Duration) (*ModuleResult, error) {
	r, ok := s.Result(moduleID, kind, aggOn)
	if !ok {
		return nil, fmt.Errorf("core: study has no result for %s/%s/%v (was Run called with it in the sweep?)",
			moduleID, kind.Short(), aggOn)
	}
	return r, nil
}

// SweepSorted returns the study's tAggON sweep in ascending order.
func (s *Study) SweepSorted() []time.Duration {
	sw := make([]time.Duration, len(s.cfg.Sweep))
	copy(sw, s.cfg.Sweep)
	sort.Slice(sw, func(i, j int) bool { return sw[i] < sw[j] })
	return sw
}
