// Package core implements the paper's characterization methodology: it
// measures ACmin (the minimum number of total aggressor-row activations
// needed to induce at least one bitflip) and the time to the first
// bitflip for any access pattern, records the observed bitflips, and
// enforces the 60 ms experiment budget the paper uses to exclude
// retention failures.
//
// Two engines implement the same contract: AnalyticEngine computes
// first-flip points in closed form from the device damage model (used for
// the full 3K-row sweeps behind Figs. 4-6 and Table 2), and BankEngine
// drives a simulated device.Bank command by command (used for
// cross-validation and by the DRAM Bender substrate). A dedicated test
// asserts the two agree.
package core

import (
	"errors"
	"fmt"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// DefaultBudget is the paper's per-experiment runtime cap, chosen
// strictly below tREFW = 64 ms so retention failures cannot contaminate
// read-disturbance results.
const DefaultBudget = 60 * time.Millisecond

// RunOpts configures one row characterization.
type RunOpts struct {
	// Budget caps the hammering wall time (default DefaultBudget).
	Budget time.Duration
	// Data selects the initialization data pattern (default
	// checkerboard, as in the paper).
	Data device.DataPattern
	// TempC is the die temperature (default 50 C, the paper's setpoint).
	TempC float64
	// Run selects a run-to-run noise realization (0 = noise-free).
	Run int64
}

// withDefaults fills zero fields.
func (o RunOpts) withDefaults() RunOpts {
	if o.Budget == 0 {
		o.Budget = DefaultBudget
	}
	if o.Data == 0 {
		o.Data = device.Checkerboard
	}
	if o.TempC == 0 {
		o.TempC = 50.0
	}
	return o
}

// RowResult is the outcome of characterizing one victim row with one
// pattern.
type RowResult struct {
	// Victim is the physical victim row index.
	Victim int
	// Spec is the pattern that was applied.
	Spec pattern.Spec
	// NoBitflip reports that no bitflip occurred within the budget
	// (Table 2's "No Bitflip" cells).
	NoBitflip bool
	// Iterations is the pattern iteration count at the first flip.
	Iterations int64
	// ACmin is the minimum total aggressor-row activations for the
	// first flip (the paper's ACmin).
	ACmin int64
	// TimeToFirst is the hammering wall time until the first flip.
	TimeToFirst time.Duration
	// Flips are the bitflips observed at the ACmin point.
	Flips []device.Bitflip
}

// Engine measures the first-bitflip point of one victim row.
type Engine interface {
	// CharacterizeRow applies spec to the victim row and returns the
	// first-flip measurement.
	CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error)
}

// Errors shared by engines.
var (
	// ErrVictimOutOfRange reports a victim row whose aggressors fall
	// outside the bank.
	ErrVictimOutOfRange = errors.New("core: victim row needs both neighbours in range")
)

func checkVictim(victim, numRows int) error {
	if victim < 1 || victim >= numRows-1 {
		return fmt.Errorf("%w: victim %d, bank rows %d", ErrVictimOutOfRange, victim, numRows)
	}
	return nil
}

// PaperRows returns the victim-row sample the paper uses: perRegion rows
// at the beginning, middle and end of the bank. Victims start at row 1
// and end at numRows-2 so each has two in-range aggressors.
func PaperRows(numRows, perRegion int) []int {
	if perRegion <= 0 || numRows < 8 {
		return nil
	}
	max := numRows - 2
	rows := make([]int, 0, 3*perRegion)
	add := func(start int) {
		for i := 0; i < perRegion; i++ {
			r := start + i
			if r < 1 {
				r = 1
			}
			if r > max {
				break
			}
			rows = append(rows, r)
		}
	}
	add(1)
	add(numRows/2 - perRegion/2)
	add(numRows - 1 - perRegion)
	// Deduplicate in the unlikely case regions overlap (tiny banks).
	seen := make(map[int]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
