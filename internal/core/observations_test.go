package core

import (
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// TestObservation2 asserts the paper's Observation 2: as tAggON starts to
// increase, the combined pattern needs slightly MORE activations than the
// conventional double-sided RowPress pattern, while both need far fewer
// than RowHammer.
func TestObservation2(t *testing.T) {
	s := smallStudy(t, StudyConfig{
		Sweep: []time.Duration{timing.TRAS, 636 * time.Nanosecond},
	})
	for _, mfr := range []chipdb.Manufacturer{chipdb.MfrS, chipdb.MfrH, chipdb.MfrM} {
		fig4, err := s.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		rh := fig4[mfr][pattern.DoubleSided][0]
		comb := fig4[mfr][pattern.Combined][1]
		dbl := fig4[mfr][pattern.DoubleSided][1]
		if comb.Modules == 0 || dbl.Modules == 0 {
			t.Fatalf("%v: missing data", mfr)
		}
		if comb.ACminMean <= dbl.ACminMean {
			t.Errorf("%v: combined ACmin %.0f not above double-sided %.0f at 636ns",
				mfr, comb.ACminMean, dbl.ACminMean)
		}
		if comb.ACminMean >= rh.ACminMean {
			t.Errorf("%v: combined ACmin %.0f not below RowHammer's %.0f",
				mfr, comb.ACminMean, rh.ACminMean)
		}
		// The paper reports 40.5-46.9% combined ACmin reduction vs
		// RowHammer at 636ns.
		red := 1 - comb.ACminMean/rh.ACminMean
		if red < 0.20 || red > 0.60 {
			t.Errorf("%v: combined ACmin reduction %.0f%% outside the paper's regime", mfr, red*100)
		}
	}
}

// TestObservation4 asserts the directionality shift of Fig. 5: for
// Mfr. S/H the 1->0 fraction rises toward 1 with tAggON; for Mfr. M
// (except the 16Gb B-die) it falls.
func TestObservation4(t *testing.T) {
	s := smallStudy(t, StudyConfig{
		Sweep: []time.Duration{timing.TRAS, timing.AggOnNineTREFI},
	})
	f5, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, mfr := range []chipdb.Manufacturer{chipdb.MfrS, chipdb.MfrH} {
		for die, pts := range f5[mfr] {
			lo, hi := pts[0], pts[1]
			if lo.Flips == 0 || hi.Flips == 0 {
				continue
			}
			if hi.OneToZeroFrac <= lo.OneToZeroFrac {
				t.Errorf("%v %s: 1->0 fraction did not rise (%.2f -> %.2f)", mfr, die, lo.OneToZeroFrac, hi.OneToZeroFrac)
			}
			if hi.OneToZeroFrac < 0.85 {
				t.Errorf("%v %s: 1->0 fraction at 70.2us = %.2f, want ~1 (press dominated)", mfr, die, hi.OneToZeroFrac)
			}
		}
	}
	for die, pts := range f5[chipdb.MfrM] {
		lo, hi := pts[0], pts[1]
		if lo.Flips == 0 || hi.Flips == 0 {
			continue
		}
		if die == "16Gb B-Die" {
			if hi.OneToZeroFrac <= lo.OneToZeroFrac {
				t.Errorf("M 16Gb B-die must follow the S/H trend (%.2f -> %.2f)", lo.OneToZeroFrac, hi.OneToZeroFrac)
			}
		} else if hi.OneToZeroFrac >= lo.OneToZeroFrac {
			t.Errorf("M %s: 1->0 fraction should fall (%.2f -> %.2f)", die, lo.OneToZeroFrac, hi.OneToZeroFrac)
		}
	}
}

// TestObservations5And6 asserts the overlap trends of Fig. 6.
func TestObservations5And6(t *testing.T) {
	s := smallStudy(t, StudyConfig{
		Modules: []chipdb.ModuleInfo{mustModule(t, "S0"), mustModule(t, "S1"), mustModule(t, "H0")},
		Sweep:   []time.Duration{timing.TRAS, 2400 * time.Nanosecond, timing.AggOnNineTREFI},
		Dies:    2,
	})
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for mfr, byDie := range f6 {
		for die, curves := range byDie {
			vs := curves.VsSingle
			vd := curves.VsDouble
			// Observation 5: overlap with single-sided increases with
			// tAggON and exceeds 75% at 70.2us.
			if vs[0].Overlap >= vs[2].Overlap {
				t.Errorf("%v %s: overlap with single did not rise (%.2f -> %.2f)", mfr, die, vs[0].Overlap, vs[2].Overlap)
			}
			if vs[2].Overlap < 0.75 {
				t.Errorf("%v %s: overlap with single at 70.2us = %.2f, want > 0.75", mfr, die, vs[2].Overlap)
			}
			// Observation 6: overlap with double starts at 1.0 (the
			// patterns are identical at tRAS), dips, then recovers past
			// 75%.
			if vd[0].Overlap != 1.0 {
				t.Errorf("%v %s: overlap with double at tRAS = %.2f, want exactly 1", mfr, die, vd[0].Overlap)
			}
			if vd[1].Overlap >= vd[0].Overlap {
				t.Errorf("%v %s: overlap with double did not dip at 2.4us (%.2f)", mfr, die, vd[1].Overlap)
			}
			if vd[2].Overlap < 0.75 {
				t.Errorf("%v %s: overlap with double at 70.2us = %.2f, want > 0.75", mfr, die, vd[2].Overlap)
			}
		}
	}
}

// TestHypothesis2 checks that at large tAggON the flips of the combined
// pattern come from the press mechanism (RowPress dominance).
func TestHypothesis2PressDominance(t *testing.T) {
	e := testEngine(t, "S0")
	spec := testSpec(t, pattern.Combined, timing.AggOnNineTREFI)
	press, total := 0, 0
	for victim := 100; victim < 200; victim++ {
		res, err := e.CharacterizeRow(victim, spec, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Flips {
			total++
			if f.Mech == device.MechPress {
				press++
			}
		}
	}
	if total == 0 {
		t.Fatal("no flips")
	}
	if frac := float64(press) / float64(total); frac < 0.9 {
		t.Errorf("press fraction at 70.2us = %.2f, want ~1 (Hypothesis 2)", frac)
	}
	// And at tRAS the hammer mechanism dominates.
	specRH := testSpec(t, pattern.Combined, timing.TRAS)
	hammer := 0
	total = 0
	for victim := 100; victim < 200; victim++ {
		res, err := e.CharacterizeRow(victim, specRH, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Flips {
			total++
			if f.Mech == device.MechHammer {
				hammer++
			}
		}
	}
	if frac := float64(hammer) / float64(total); frac < 0.95 {
		t.Errorf("hammer fraction at tRAS = %.2f, want ~1", frac)
	}
}

// TestHypothesis1SideAsymmetry verifies the implemented Hypothesis 1
// directly: making the press coupling symmetric (coupling = 1) shrinks
// the combined-vs-double ACmin gap, while a strongly asymmetric coupling
// widens it.
func TestHypothesis1SideAsymmetry(t *testing.T) {
	mi := mustModule(t, "S0")
	params := device.DefaultParams()
	gapAt := func(coupling float64) float64 {
		profile := mi.Profile(params)
		profile.WeakSideCoupling = coupling
		e, err := NewAnalyticEngine(AnalyticConfig{Profile: profile, Params: params, NumRows: 8192})
		if err != nil {
			t.Fatal(err)
		}
		specC := testSpec(t, pattern.Combined, timing.AggOnNineTREFI)
		specD := testSpec(t, pattern.DoubleSided, timing.AggOnNineTREFI)
		var sumC, sumD float64
		n := 0
		for victim := 100; victim < 140; victim++ {
			rc, err := e.CharacterizeRow(victim, specC, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			rd, err := e.CharacterizeRow(victim, specD, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if rc.NoBitflip || rd.NoBitflip {
				continue
			}
			sumC += float64(rc.ACmin)
			sumD += float64(rd.ACmin)
			n++
		}
		if n == 0 {
			t.Fatal("no flips")
		}
		return sumC / sumD
	}
	symmetric := gapAt(1.0)
	asymmetric := gapAt(0.1)
	if asymmetric >= symmetric {
		t.Errorf("combined/double ACmin ratio should shrink with asymmetry: sym=%.2f asym=%.2f", symmetric, asymmetric)
	}
	// With near-total asymmetry the combined pattern loses almost
	// nothing vs double-sided (the weak side contributed nothing).
	if asymmetric > 1.25 {
		t.Errorf("ratio at coupling 0.1 = %.2f, want close to 1", asymmetric)
	}
	// With symmetric coupling the combined pattern needs ~2x the
	// activations (it wastes half its acts on a non-pressing side).
	if symmetric < 1.6 || symmetric > 2.3 {
		t.Errorf("ratio at coupling 1.0 = %.2f, want ~2", symmetric)
	}
}
