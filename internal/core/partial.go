package core

import (
	"fmt"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/pattern"
)

// GridCoverage reports how much of a study's cell grid has results —
// the "N of M cells" annotation every partial extractor carries so a
// live campaign's figures can be watched converging without partial
// data ever masquerading as complete.
type GridCoverage struct {
	// Done is the number of grid cells with results (run or seeded).
	Done int
	// Total is the size of the full cell grid.
	Total int
	// Quarantined is the number of cells without results that belong
	// to dead-lettered campaign units (SetUnavailable): they are not
	// coming, and a degraded report annotates them as quarantined
	// rather than pending.
	Quarantined int
}

// Complete reports whether every cell of the grid has results.
func (c GridCoverage) Complete() bool { return c.Done >= c.Total }

// Settled reports that no more results are expected: every cell either
// has results or is quarantined. A settled-but-incomplete grid is a
// degraded campaign's final state.
func (c GridCoverage) Settled() bool { return c.Done+c.Quarantined >= c.Total }

// String renders the paper-margin form "12 of 27 cells (44.4%)".
func (c GridCoverage) String() string {
	pct := 0.0
	if c.Total > 0 {
		pct = 100 * float64(c.Done) / float64(c.Total)
	}
	return fmt.Sprintf("%d of %d cells (%.1f%%)", c.Done, c.Total, pct)
}

// Coverage reports the study's current grid coverage. Safe to call
// concurrently with an ongoing Run (it reads under the results lock).
func (s *Study) Coverage() GridCoverage {
	s.mu.Lock()
	done := len(s.results)
	quar := 0
	for key := range s.unavailable {
		if _, ok := s.results[key]; !ok {
			quar++
		}
	}
	s.mu.Unlock()
	return GridCoverage{Done: done, Total: len(s.Cells()), Quarantined: quar}
}

// SetUnavailable marks cells whose results will never arrive — the
// cells of a campaign's quarantined or dropped units. Partial
// extractors report them as quarantined instead of pending, so a
// degraded report reads as what it is: final, minus the dead-lettered
// cells. A cell that nevertheless has results (a late submit landed
// before quarantine) is unaffected.
func (s *Study) SetUnavailable(keys []CellKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unavailable == nil {
		s.unavailable = make(map[CellKey]bool, len(keys))
	}
	for _, k := range keys {
		s.unavailable[k] = true
	}
}

// cellQuarantined reports whether a cell is unavailable and without
// results; callers pass the fully-qualified key.
func (s *Study) cellQuarantined(key CellKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.unavailable[key] {
		return false
	}
	_, ok := s.results[key]
	return !ok
}

// Table2Marks labels the five measured columns of Table 2, in column
// order. Index j of a Table2PartialRow's Pending mask refers to
// Table2Marks[j].
var Table2Marks = [5]string{"RH@36ns", "RP@7.8us", "RP@70.2us", "C@7.8us", "C@70.2us"}

// table2MarkCells are the (pattern, tAggON) grid cells behind the five
// Table 2 columns, in Table2Marks order.
var table2MarkCells = [5]struct {
	Kind  pattern.Kind
	AggOn time.Duration
}{
	{pattern.DoubleSided, 36 * time.Nanosecond},
	{pattern.DoubleSided, 7800 * time.Nanosecond},
	{pattern.DoubleSided, 70200 * time.Nanosecond},
	{pattern.Combined, 7800 * time.Nanosecond},
	{pattern.Combined, 70200 * time.Nanosecond},
}

// Table2PartialRow is one module's Table 2 row extracted from a
// possibly incomplete grid. Pending distinguishes "cell not measured
// yet" from the zero Measured values that render as "No Bitflip".
type Table2PartialRow struct {
	Table2Row
	// Pending flags the Table2Marks columns whose cell has no results.
	Pending [5]bool
	// Quarantined flags the columns whose cell has no results and never
	// will (its campaign unit was dead-lettered); disjoint from Pending.
	Quarantined [5]bool
}

// PartialTable2 extracts Table 2 from whatever cells the study has,
// marking missing cells pending instead of failing. The returned
// coverage counts the whole study grid, so renderers can annotate how
// much of the campaign backs the table.
func (s *Study) PartialTable2() ([]Table2PartialRow, GridCoverage) {
	rows := make([]Table2PartialRow, 0, len(s.cfg.Modules))
	for _, mi := range s.cfg.Modules {
		pr := Table2PartialRow{Table2Row: Table2Row{Info: mi}}
		m := &pr.Measured
		dst := [5]struct {
			ac *chipdb.PaperACmin
			tm *chipdb.PaperTime
		}{
			{&m.RH, &m.TRH},
			{&m.RP78, &m.TRP78},
			{&m.RP702, &m.TRP702},
			{&m.C78, &m.TC78},
			{&m.C702, &m.TC702},
		}
		for j, c := range table2MarkCells {
			r, ok := s.Result(mi.ID, c.Kind, c.AggOn)
			if !ok {
				if s.cellQuarantined(s.primaryKey(mi.ID, c.Kind, c.AggOn)) {
					pr.Quarantined[j] = true
				} else {
					pr.Pending[j] = true
				}
				continue
			}
			ac := r.ACminStats()
			ts := r.TimeStats()
			if ac.Flipped() {
				*dst[j].ac = chipdb.PaperACmin{Avg: ac.Mean, Min: ac.Min}
				*dst[j].tm = chipdb.PaperTime{AvgMs: ts.Mean * 1000, MinMs: ts.Min * 1000}
			}
		}
		rows = append(rows, pr)
	}
	return rows, s.Coverage()
}

// Fig4Partial is Fig. 4 extracted from a possibly incomplete grid:
// the curves over whatever cells exist, plus enough bookkeeping to
// annotate what is still missing.
type Fig4Partial struct {
	Data Fig4Data
	// Pending[mfr][kind][i] counts the manufacturer's modules whose
	// cell at SweepSorted()[i] has no results yet (0 = the point is
	// final).
	Pending map[chipdb.Manufacturer]map[pattern.Kind][]int
	// Quarantined mirrors Pending for cells that will never get
	// results (dead-lettered campaign units).
	Quarantined map[chipdb.Manufacturer]map[pattern.Kind][]int
	// Coverage is the whole-grid coverage backing the figure.
	Coverage GridCoverage
}

// primaryKey is the fully-qualified grid key of a (module, pattern,
// tAggON) cell on the study's primary scenario — the cell Result reads.
func (s *Study) primaryKey(moduleID string, kind pattern.Kind, aggOn time.Duration) CellKey {
	return CellKey{Module: moduleID, Kind: kind, AggOn: aggOn, Scenario: s.cfg.primaryScenarioID()}
}

// PartialFig4 extracts Fig. 4 from whatever cells the study has.
// Missing cells are skipped (their modules simply don't contribute to
// the point) and counted in Pending, so a live campaign's curves can
// be rendered mid-flight without presenting partial means as final.
func (s *Study) PartialFig4() Fig4Partial {
	p := Fig4Partial{
		Data:        make(Fig4Data),
		Pending:     make(map[chipdb.Manufacturer]map[pattern.Kind][]int),
		Quarantined: make(map[chipdb.Manufacturer]map[pattern.Kind][]int),
		Coverage:    s.Coverage(),
	}
	sweep := s.SweepSorted()
	for _, mfr := range []chipdb.Manufacturer{chipdb.MfrS, chipdb.MfrH, chipdb.MfrM} {
		mods := modulesOf(s.cfg.Modules, mfr)
		if len(mods) == 0 {
			continue
		}
		perPattern := make(map[pattern.Kind]Fig4Series, len(s.cfg.Patterns))
		pendPattern := make(map[pattern.Kind][]int, len(s.cfg.Patterns))
		quarPattern := make(map[pattern.Kind][]int, len(s.cfg.Patterns))
		for _, k := range s.cfg.Patterns {
			series := make(Fig4Series, 0, len(sweep))
			pend := make([]int, len(sweep))
			quar := make([]int, len(sweep))
			for i, aggOn := range sweep {
				var times, acmins []float64
				for _, mi := range mods {
					r, ok := s.Result(mi.ID, k, aggOn)
					if !ok {
						if s.cellQuarantined(s.primaryKey(mi.ID, k, aggOn)) {
							quar[i]++
						} else {
							pend[i]++
						}
						continue
					}
					ts := r.TimeStats()
					as := r.ACminStats()
					if !ts.Flipped() {
						continue
					}
					times = append(times, ts.Mean*1000)
					acmins = append(acmins, as.Mean)
				}
				pt := Fig4Point{AggOn: aggOn, Modules: len(times)}
				if len(times) > 0 {
					tst := summarize(times, len(times))
					ast := summarize(acmins, len(acmins))
					pt.TimeMeanMs, pt.TimeStdMs = tst.Mean, tst.Std
					pt.ACminMean, pt.ACminStd = ast.Mean, ast.Std
				}
				series = append(series, pt)
			}
			perPattern[k] = series
			pendPattern[k] = pend
			quarPattern[k] = quar
		}
		p.Data[mfr] = perPattern
		p.Pending[mfr] = pendPattern
		p.Quarantined[mfr] = quarPattern
	}
	return p
}
