//go:build amd64 && !purego

#include "textflag.h"

// The AVX2 damage kernels. See kernels.go for the per-lane contract.
//
// Bit-exactness notes:
//   - Only VMULPD/VDIVPD/VADDPD are used — no VFMADD*, so every
//     operation rounds individually, exactly like the scalar kernels.
//   - Lanes are cells; the per-cell operation order matches the
//     scalar kernels statement for statement.
//   - n is a multiple of 4 (callers pad to solveLanes = 8), so there
//     is no scalar tail.
//
// Register plan (both kernels):
//   DI=st SI=fi R8=tot R9=ft R10=synS R11=synF R12=ws R13=th R14=tp
//   Y10=boost Y11=se Y12=fe Y13=weakSide Y14=tf
//   BX=byte offset CX=byte length

// func damageSplitAVX2(k *damageKernArgs)
TEXT ·damageSplitAVX2(SB), NOSPLIT, $0-8
	MOVQ k+0(FP), AX
	MOVQ 0(AX), DI            // st
	MOVQ 8(AX), SI            // fi
	MOVQ 16(AX), R8           // tot
	MOVQ 24(AX), R9           // ft
	MOVQ 32(AX), R10          // synS
	MOVQ 40(AX), R11          // synF
	MOVQ 48(AX), R12          // ws
	MOVQ 56(AX), R13          // th
	MOVQ 64(AX), R14          // tp
	VBROADCASTSD 72(AX), Y10  // boost
	VBROADCASTSD 80(AX), Y11  // se
	VBROADCASTSD 88(AX), Y12  // fe
	VBROADCASTSD 96(AX), Y13  // weakSide
	VBROADCASTSD 104(AX), Y14 // tf
	MOVQ 112(AX), CX          // n
	SHLQ $3, CX               // -> bytes
	XORQ BX, BX
	MOVQ 120(AX), DX          // init: store totals instead of accumulating
	TESTQ DX, DX
	JNZ  splitinit

splitloop:
	CMPQ BX, CX
	JGE  splitdone
	VMOVUPD (R10)(BX*1), Y0   // synS
	VMULPD  Y10, Y0, Y0       // hs = boost*synS
	VMOVUPD (R12)(BX*1), Y2   // ws
	VMULPD  Y13, Y2, Y2       // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Y3   // th
	VMOVUPD (R14)(BX*1), Y4   // tp
	VDIVPD  Y3, Y0, Y0        // hs/th
	VMULPD  Y11, Y2, Y5       // se*sf
	VDIVPD  Y4, Y5, Y5        // (se*sf)/tp
	VADDPD  Y5, Y0, Y0        // hs/th + (se*sf)/tp
	VMULPD  Y14, Y0, Y0       // st = tf*(...)
	VMOVUPD Y0, (DI)(BX*1)
	VMOVUPD (R8)(BX*1), Y6
	VADDPD  Y0, Y6, Y6        // tot += st
	VMOVUPD Y6, (R8)(BX*1)
	VMOVUPD (R11)(BX*1), Y1   // synF
	VMULPD  Y10, Y1, Y1       // hf = boost*synF
	VDIVPD  Y3, Y1, Y1        // hf/th
	VMULPD  Y12, Y2, Y7       // fe*sf
	VDIVPD  Y4, Y7, Y7        // (fe*sf)/tp
	VADDPD  Y7, Y1, Y1
	VMULPD  Y14, Y1, Y1       // fi = tf*(...)
	VMOVUPD Y1, (SI)(BX*1)
	VMOVUPD (R9)(BX*1), Y8
	VADDPD  Y1, Y8, Y8        // ft += fi
	VMOVUPD Y8, (R9)(BX*1)
	ADDQ $32, BX
	JMP  splitloop

splitinit:
	CMPQ BX, CX
	JGE  splitdone
	VMOVUPD (R10)(BX*1), Y0   // synS
	VMULPD  Y10, Y0, Y0       // hs = boost*synS
	VMOVUPD (R12)(BX*1), Y2   // ws
	VMULPD  Y13, Y2, Y2       // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Y3   // th
	VMOVUPD (R14)(BX*1), Y4   // tp
	VDIVPD  Y3, Y0, Y0        // hs/th
	VMULPD  Y11, Y2, Y5       // se*sf
	VDIVPD  Y4, Y5, Y5        // (se*sf)/tp
	VADDPD  Y5, Y0, Y0        // hs/th + (se*sf)/tp
	VMULPD  Y14, Y0, Y0       // st = tf*(...)
	VMOVUPD Y0, (DI)(BX*1)
	VMOVUPD Y0, (R8)(BX*1)    // tot = st
	VMOVUPD (R11)(BX*1), Y1   // synF
	VMULPD  Y10, Y1, Y1       // hf = boost*synF
	VDIVPD  Y3, Y1, Y1        // hf/th
	VMULPD  Y12, Y2, Y7       // fe*sf
	VDIVPD  Y4, Y7, Y7        // (fe*sf)/tp
	VADDPD  Y7, Y1, Y1
	VMULPD  Y14, Y1, Y1       // fi = tf*(...)
	VMOVUPD Y1, (SI)(BX*1)
	VMOVUPD Y1, (R9)(BX*1)    // ft = fi
	ADDQ $32, BX
	JMP  splitinit

splitdone:
	VZEROUPPER
	RET

// func damageFusedAVX2(k *damageKernArgs)
TEXT ·damageFusedAVX2(SB), NOSPLIT, $0-8
	MOVQ k+0(FP), AX
	MOVQ 0(AX), DI            // st
	MOVQ 16(AX), R8           // tot
	MOVQ 24(AX), R9           // ft
	MOVQ 32(AX), R10          // synS
	MOVQ 48(AX), R12          // ws
	MOVQ 56(AX), R13          // th
	MOVQ 64(AX), R14          // tp
	VBROADCASTSD 72(AX), Y10  // boost
	VBROADCASTSD 80(AX), Y11  // se
	VBROADCASTSD 96(AX), Y13  // weakSide
	VBROADCASTSD 104(AX), Y14 // tf
	MOVQ 112(AX), CX          // n
	SHLQ $3, CX
	XORQ BX, BX
	MOVQ 120(AX), DX          // init
	TESTQ DX, DX
	JNZ  fusedinit

fusedloop:
	CMPQ BX, CX
	JGE  fuseddone
	VMOVUPD (R10)(BX*1), Y0   // synS
	VMULPD  Y10, Y0, Y0       // hs = boost*synS
	VMOVUPD (R12)(BX*1), Y2   // ws
	VMULPD  Y13, Y2, Y2       // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Y3   // th
	VMOVUPD (R14)(BX*1), Y4   // tp
	VDIVPD  Y3, Y0, Y0        // hs/th
	VMULPD  Y11, Y2, Y5       // se*sf
	VDIVPD  Y4, Y5, Y5        // (se*sf)/tp
	VADDPD  Y5, Y0, Y0
	VMULPD  Y14, Y0, Y0       // st = tf*(...)
	VMOVUPD Y0, (DI)(BX*1)
	VMOVUPD (R8)(BX*1), Y6
	VADDPD  Y0, Y6, Y6        // tot += st
	VMOVUPD Y6, (R8)(BX*1)
	VMOVUPD (R9)(BX*1), Y8
	VADDPD  Y0, Y8, Y8        // ft += st
	VMOVUPD Y8, (R9)(BX*1)
	ADDQ $32, BX
	JMP  fusedloop

fusedinit:
	CMPQ BX, CX
	JGE  fuseddone
	VMOVUPD (R10)(BX*1), Y0   // synS
	VMULPD  Y10, Y0, Y0       // hs = boost*synS
	VMOVUPD (R12)(BX*1), Y2   // ws
	VMULPD  Y13, Y2, Y2       // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Y3   // th
	VMOVUPD (R14)(BX*1), Y4   // tp
	VDIVPD  Y3, Y0, Y0        // hs/th
	VMULPD  Y11, Y2, Y5       // se*sf
	VDIVPD  Y4, Y5, Y5        // (se*sf)/tp
	VADDPD  Y5, Y0, Y0
	VMULPD  Y14, Y0, Y0       // st = tf*(...)
	VMOVUPD Y0, (DI)(BX*1)
	VMOVUPD Y0, (R8)(BX*1)    // tot = st
	VMOVUPD Y0, (R9)(BX*1)    // ft = st
	ADDQ $32, BX
	JMP  fusedinit

fuseddone:
	VZEROUPPER
	RET

// The AVX-512 widenings of the same kernels: identical operation
// order, 8 lanes (one ZMM) per step instead of 4. n is a multiple of
// 8 (solveLanes), so there is no tail here either.

// func damageSplitAVX512(k *damageKernArgs)
TEXT ·damageSplitAVX512(SB), NOSPLIT, $0-8
	MOVQ k+0(FP), AX
	MOVQ 0(AX), DI             // st
	MOVQ 8(AX), SI             // fi
	MOVQ 16(AX), R8            // tot
	MOVQ 24(AX), R9            // ft
	MOVQ 32(AX), R10           // synS
	MOVQ 40(AX), R11           // synF
	MOVQ 48(AX), R12           // ws
	MOVQ 56(AX), R13           // th
	MOVQ 64(AX), R14           // tp
	VBROADCASTSD 72(AX), Z10   // boost
	VBROADCASTSD 80(AX), Z11   // se
	VBROADCASTSD 88(AX), Z12   // fe
	VBROADCASTSD 96(AX), Z13   // weakSide
	VBROADCASTSD 104(AX), Z14  // tf
	MOVQ 112(AX), CX           // n
	SHLQ $3, CX                // -> bytes
	XORQ BX, BX
	MOVQ 120(AX), DX           // init
	TESTQ DX, DX
	JNZ  splitinit512

splitloop512:
	CMPQ BX, CX
	JGE  splitdone512
	VMOVUPD (R10)(BX*1), Z0    // synS
	VMULPD  Z10, Z0, Z0        // hs = boost*synS
	VMOVUPD (R12)(BX*1), Z2    // ws
	VMULPD  Z13, Z2, Z2        // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Z3    // th
	VMOVUPD (R14)(BX*1), Z4    // tp
	VDIVPD  Z3, Z0, Z0         // hs/th
	VMULPD  Z11, Z2, Z5        // se*sf
	VDIVPD  Z4, Z5, Z5         // (se*sf)/tp
	VADDPD  Z5, Z0, Z0
	VMULPD  Z14, Z0, Z0        // st = tf*(...)
	VMOVUPD Z0, (DI)(BX*1)
	VMOVUPD (R8)(BX*1), Z6
	VADDPD  Z0, Z6, Z6         // tot += st
	VMOVUPD Z6, (R8)(BX*1)
	VMOVUPD (R11)(BX*1), Z1    // synF
	VMULPD  Z10, Z1, Z1        // hf = boost*synF
	VDIVPD  Z3, Z1, Z1         // hf/th
	VMULPD  Z12, Z2, Z7        // fe*sf
	VDIVPD  Z4, Z7, Z7         // (fe*sf)/tp
	VADDPD  Z7, Z1, Z1
	VMULPD  Z14, Z1, Z1        // fi = tf*(...)
	VMOVUPD Z1, (SI)(BX*1)
	VMOVUPD (R9)(BX*1), Z8
	VADDPD  Z1, Z8, Z8         // ft += fi
	VMOVUPD Z8, (R9)(BX*1)
	ADDQ $64, BX
	JMP  splitloop512

splitinit512:
	CMPQ BX, CX
	JGE  splitdone512
	VMOVUPD (R10)(BX*1), Z0    // synS
	VMULPD  Z10, Z0, Z0        // hs = boost*synS
	VMOVUPD (R12)(BX*1), Z2    // ws
	VMULPD  Z13, Z2, Z2        // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Z3    // th
	VMOVUPD (R14)(BX*1), Z4    // tp
	VDIVPD  Z3, Z0, Z0         // hs/th
	VMULPD  Z11, Z2, Z5        // se*sf
	VDIVPD  Z4, Z5, Z5         // (se*sf)/tp
	VADDPD  Z5, Z0, Z0
	VMULPD  Z14, Z0, Z0        // st = tf*(...)
	VMOVUPD Z0, (DI)(BX*1)
	VMOVUPD Z0, (R8)(BX*1)     // tot = st
	VMOVUPD (R11)(BX*1), Z1    // synF
	VMULPD  Z10, Z1, Z1        // hf = boost*synF
	VDIVPD  Z3, Z1, Z1         // hf/th
	VMULPD  Z12, Z2, Z7        // fe*sf
	VDIVPD  Z4, Z7, Z7         // (fe*sf)/tp
	VADDPD  Z7, Z1, Z1
	VMULPD  Z14, Z1, Z1        // fi = tf*(...)
	VMOVUPD Z1, (SI)(BX*1)
	VMOVUPD Z1, (R9)(BX*1)     // ft = fi
	ADDQ $64, BX
	JMP  splitinit512

splitdone512:
	VZEROUPPER
	RET

// func damageFusedAVX512(k *damageKernArgs)
TEXT ·damageFusedAVX512(SB), NOSPLIT, $0-8
	MOVQ k+0(FP), AX
	MOVQ 0(AX), DI             // st
	MOVQ 16(AX), R8            // tot
	MOVQ 24(AX), R9            // ft
	MOVQ 32(AX), R10           // synS
	MOVQ 48(AX), R12           // ws
	MOVQ 56(AX), R13           // th
	MOVQ 64(AX), R14           // tp
	VBROADCASTSD 72(AX), Z10   // boost
	VBROADCASTSD 80(AX), Z11   // se
	VBROADCASTSD 96(AX), Z13   // weakSide
	VBROADCASTSD 104(AX), Z14  // tf
	MOVQ 112(AX), CX           // n
	SHLQ $3, CX
	XORQ BX, BX
	MOVQ 120(AX), DX           // init
	TESTQ DX, DX
	JNZ  fusedinit512

fusedloop512:
	CMPQ BX, CX
	JGE  fuseddone512
	VMOVUPD (R10)(BX*1), Z0    // synS
	VMULPD  Z10, Z0, Z0        // hs = boost*synS
	VMOVUPD (R12)(BX*1), Z2    // ws
	VMULPD  Z13, Z2, Z2        // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Z3    // th
	VMOVUPD (R14)(BX*1), Z4    // tp
	VDIVPD  Z3, Z0, Z0         // hs/th
	VMULPD  Z11, Z2, Z5        // se*sf
	VDIVPD  Z4, Z5, Z5         // (se*sf)/tp
	VADDPD  Z5, Z0, Z0
	VMULPD  Z14, Z0, Z0        // st = tf*(...)
	VMOVUPD Z0, (DI)(BX*1)
	VMOVUPD (R8)(BX*1), Z6
	VADDPD  Z0, Z6, Z6         // tot += st
	VMOVUPD Z6, (R8)(BX*1)
	VMOVUPD (R9)(BX*1), Z8
	VADDPD  Z0, Z8, Z8         // ft += st
	VMOVUPD Z8, (R9)(BX*1)
	ADDQ $64, BX
	JMP  fusedloop512

fusedinit512:
	CMPQ BX, CX
	JGE  fuseddone512
	VMOVUPD (R10)(BX*1), Z0    // synS
	VMULPD  Z10, Z0, Z0        // hs = boost*synS
	VMOVUPD (R12)(BX*1), Z2    // ws
	VMULPD  Z13, Z2, Z2        // sf = weakSide*ws
	VMOVUPD (R13)(BX*1), Z3    // th
	VMOVUPD (R14)(BX*1), Z4    // tp
	VDIVPD  Z3, Z0, Z0         // hs/th
	VMULPD  Z11, Z2, Z5        // se*sf
	VDIVPD  Z4, Z5, Z5         // (se*sf)/tp
	VADDPD  Z5, Z0, Z0
	VMULPD  Z14, Z0, Z0        // st = tf*(...)
	VMOVUPD Z0, (DI)(BX*1)
	VMOVUPD Z0, (R8)(BX*1)     // tot = st
	VMOVUPD Z0, (R9)(BX*1)     // ft = st
	ADDQ $64, BX
	JMP  fusedinit512

fuseddone512:
	VZEROUPPER
	RET

