package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func fleetTestConfig(chips, perCell int) StudyConfig {
	return StudyConfig{
		Fleet:         &FleetPlan{Chips: chips, ChipsPerCell: perCell, RowsPerChip: 2, Seed: 99},
		Patterns:      []pattern.Kind{pattern.DoubleSided},
		Sweep:         []time.Duration{timing.AggOnTREFI},
		RowsPerRegion: 1,
		Runs:          1,
		Concurrency:   2,
	}
}

func TestFleetPlanBlocks(t *testing.T) {
	f := FleetPlan{Chips: 1000, ChipsPerCell: 512, RowsPerChip: 3}
	if got := f.Blocks(); got != 2 {
		t.Fatalf("Blocks() = %d, want 2", got)
	}
	lo, hi := f.BlockRange(1)
	if lo != 512 || hi != 1000 {
		t.Fatalf("BlockRange(1) = [%d, %d), want [512, 1000)", lo, hi)
	}
	for _, b := range []int{0, 7, 12345678} {
		id := FleetBlockID(b)
		got, ok := ParseFleetBlockID(id)
		if !ok || got != b {
			t.Fatalf("ParseFleetBlockID(%q) = %d, %v", id, got, ok)
		}
	}
	for _, bad := range []string{"", "S0", "fleet[]", "fleet[12]", "fleet[-0000001]", "fleet[00000001"} {
		if _, ok := ParseFleetBlockID(bad); ok {
			t.Errorf("ParseFleetBlockID(%q) accepted", bad)
		}
	}
}

func TestFleetShardedByteIdentical(t *testing.T) {
	const chips, perCell = 96, 16
	snapshotJSON := func(s *Study) map[CellKey]string {
		out := make(map[CellKey]string)
		for k, st := range s.Snapshot() {
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			out[k] = string(b)
		}
		return out
	}

	whole := NewStudy(fleetTestConfig(chips, perCell))
	if err := whole.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref := snapshotJSON(whole)
	if len(ref) != 6 {
		t.Fatalf("got %d cells, want 6 blocks", len(ref))
	}

	// Three shards, merged, must match cell-for-cell byte-identically.
	merged := make(map[CellKey]string)
	for i := 0; i < 3; i++ {
		cfg := fleetTestConfig(chips, perCell)
		cfg.Shard = ShardPlan{Index: i, Count: 3}
		sh := NewStudy(cfg)
		if err := sh.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		for k, v := range snapshotJSON(sh) {
			if _, dup := merged[k]; dup {
				t.Fatalf("cell %v computed by two shards", k)
			}
			merged[k] = v
		}
	}
	if !reflect.DeepEqual(merged, ref) {
		t.Error("sharded-and-merged fleet fold differs from unsharded run")
	}

	// Seed/Snapshot round trip preserves fleet state bytes.
	reseed := NewStudy(fleetTestConfig(chips, perCell))
	if err := reseed.Seed(whole.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := snapshotJSON(reseed); !reflect.DeepEqual(got, ref) {
		t.Error("Seed/Snapshot round trip changed fleet state")
	}
}

func TestFleetStatsAndSurvival(t *testing.T) {
	s := NewStudy(fleetTestConfig(64, 16))
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats, err := FleetStats(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(stats))
	}
	sc := stats[0]
	if sc.Chips() != 64 {
		t.Fatalf("observed %d chips, want 64", sc.Chips())
	}
	if sc.Cells != 4 {
		t.Fatalf("folded %d cells, want 4", sc.Cells)
	}
	var flipped uint64
	for _, g := range sc.Groups {
		flipped += g.Flipped
		if g.Survival() < 0 || g.Survival() > 1 {
			t.Fatalf("group %s survival %v out of range", g.Key, g.Survival())
		}
		if g.Flipped > 0 {
			if g.ACmin.Count() != g.Flipped {
				t.Fatalf("group %s sketch count %d != flipped %d", g.Key, g.ACmin.Count(), g.Flipped)
			}
			if p50 := g.ACmin.Quantile(0.5); p50 <= 0 {
				t.Fatalf("group %s p50 ACmin = %v", g.Key, p50)
			}
		}
	}
	if flipped == 0 {
		t.Fatal("no chip flipped — double-sided hammer at tREFI should flip most chips")
	}
}

// TestFleetFoldBoundedMemory asserts the fold abstraction's core
// promise: resident fold state is O(sketch), not O(chips). A fleet
// 8x larger must serialize to essentially the same state size (the
// sketch has a fixed structural bin budget; only bin occupancy can
// grow, logarithmically at that).
func TestFleetFoldBoundedMemory(t *testing.T) {
	stateBytes := func(chips int) int {
		cfg := fleetTestConfig(chips, chips) // one block: worst case for one fold
		s := NewStudy(cfg)
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, st := range s.Snapshot() {
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			n += len(b)
		}
		return n
	}
	small := stateBytes(800)
	big := stateBytes(6400)
	// 8x the chips must not come close to 8x the state: occupancy of
	// the fixed bin budget grows at most logarithmically, while an
	// O(chips) fold would scale linearly.
	if big > 3*small {
		t.Errorf("fold state grew from %dB (800 chips) to %dB (6400 chips): not O(sketch)", small, big)
	}
	const structuralCap = 256 << 10
	if big > structuralCap {
		t.Errorf("fold state %dB exceeds the structural sketch budget", big)
	}
}
