package core

import (
	"math"
	"testing"
	"time"

	"rowfuse/internal/device"
)

func TestWelfordMatchesSummarize(t *testing.T) {
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var w welford
	for _, v := range values {
		w.add(v)
	}
	got := w.stats(len(values))
	want := summarize(values, len(values))
	if math.Abs(got.Mean-want.Mean) > 1e-12 {
		t.Errorf("mean %g vs %g", got.Mean, want.Mean)
	}
	if math.Abs(got.Std-want.Std) > 1e-12 {
		t.Errorf("std %g vs %g", got.Std, want.Std)
	}
	if got.Min != want.Min || got.N != want.N {
		t.Errorf("min/n %g/%d vs %g/%d", got.Min, got.N, want.Min, want.N)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w welford
	st := w.stats(7)
	if st.Flipped() || st.Total != 7 || st.Mean != 0 {
		t.Errorf("empty welford stats: %+v", st)
	}
}

func TestCellAggregateObserve(t *testing.T) {
	a := newCellAggregate()
	a.Observe(0, RowResult{NoBitflip: true})
	a.Observe(0, RowResult{
		ACmin:       100,
		TimeToFirst: 2 * time.Millisecond,
		Flips: []device.Bitflip{
			{Row: 5, Bit: 9, Dir: device.OneToZero},
			{Row: 5, Bit: 12, Dir: device.ZeroToOne},
		},
	})
	a.Observe(1, RowResult{
		ACmin:       200,
		TimeToFirst: 4 * time.Millisecond,
		Flips: []device.Bitflip{
			{Row: 5, Bit: 9, Dir: device.OneToZero}, // same bit, other die
		},
	})
	if a.total != 3 {
		t.Errorf("total = %d", a.total)
	}
	st := a.acmin.stats(a.total)
	if st.N != 2 || st.Mean != 150 || st.Min != 100 {
		t.Errorf("acmin stats %+v", st)
	}
	if a.flips != 3 || a.oneToZero != 2 {
		t.Errorf("flips %d oneToZero %d", a.flips, a.oneToZero)
	}
	// Keys are namespaced by die: the same (row,bit) on two dies stays
	// distinct.
	if len(a.flipKeys) != 3 {
		t.Errorf("unique keys = %d, want 3", len(a.flipKeys))
	}
}
