package core

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func TestParseShard(t *testing.T) {
	good := map[string]ShardPlan{
		"1/1":  {Index: 0, Count: 1},
		"1/3":  {Index: 0, Count: 3},
		"3/3":  {Index: 2, Count: 3},
		" 2/4": {Index: 1, Count: 4},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil {
			t.Errorf("ParseShard(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"", "3", "0/3", "4/3", "-1/3", "a/3", "1/b", "1/0"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

func TestShardPlanPartitions(t *testing.T) {
	// Every cell index belongs to exactly one of n shards, for several n.
	for _, n := range []int{1, 2, 3, 7} {
		for i := 0; i < 100; i++ {
			owners := 0
			for s := 0; s < n; s++ {
				if (ShardPlan{Index: s, Count: n}).Contains(i) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("cell %d owned by %d of %d shards", i, owners, n)
			}
		}
	}
	if !(ShardPlan{}).Contains(42) {
		t.Error("zero plan must contain every cell")
	}
	for _, p := range []ShardPlan{{Index: 0, Count: -3}, {Index: -1, Count: 2}, {Index: 1, Count: 1}, {Index: 2, Count: 2}} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	for _, p := range []ShardPlan{{}, {Index: 0, Count: 1}, {Index: 1, Count: 2}} {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", p, err)
		}
	}
	if (ShardPlan{}).IsSharded() || !(ShardPlan{Index: 0, Count: 2}).IsSharded() {
		t.Error("IsSharded misreports")
	}
	if got := (ShardPlan{Index: 1, Count: 3}).String(); got != "2/3" {
		t.Errorf("String() = %q, want 2/3", got)
	}
	if got := (ShardPlan{}).String(); got != "" {
		t.Errorf("zero plan String() = %q, want empty", got)
	}
}

func TestStudyCellsDeterministicOrder(t *testing.T) {
	a := NewStudy(tinyStudyConfig(t)).Cells()
	b := NewStudy(tinyStudyConfig(t)).Cells()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Cells() order differs between identical configs")
	}
	// 2 modules x 3 patterns x 2 sweep points.
	if len(a) != 12 {
		t.Fatalf("got %d cells, want 12", len(a))
	}
}

func TestWelfordMergeWithEmptyIsExact(t *testing.T) {
	var w welford
	for _, v := range []float64{3.25, 1.5, 9.125, 2.75} {
		w.add(v)
	}
	merged := w
	merged.merge(welford{})
	if merged != w {
		t.Errorf("merge with empty changed state: %+v vs %+v", merged, w)
	}
	var empty welford
	empty.merge(w)
	if empty != w {
		t.Errorf("empty.merge(w) = %+v, want %+v", empty, w)
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	vals := []float64{4.2, 17.5, 0.25, 3.125, 88, 1e-3, 42.42, 7}
	for split := 0; split <= len(vals); split++ {
		var a, b, whole welford
		for i, v := range vals {
			if i < split {
				a.add(v)
			} else {
				b.add(v)
			}
			whole.add(v)
		}
		a.merge(b)
		sa, sw := a.stats(len(vals)), whole.stats(len(vals))
		if sa.N != sw.N || sa.Min != sw.Min {
			t.Fatalf("split %d: N/Min differ: %+v vs %+v", split, sa, sw)
		}
		if math.Abs(sa.Mean-sw.Mean) > 1e-12*math.Abs(sw.Mean) {
			t.Errorf("split %d: mean %g vs %g", split, sa.Mean, sw.Mean)
		}
		if math.Abs(sa.Std-sw.Std) > 1e-9*math.Abs(sw.Std) {
			t.Errorf("split %d: std %g vs %g", split, sa.Std, sw.Std)
		}
	}
}

func TestMergeAggregatesWithEmptyIsBitIdentical(t *testing.T) {
	a := newCellAggregate()
	a.Observe(0, RowResult{ACmin: 1234, TimeToFirst: 5 * time.Millisecond,
		Flips: []device.Bitflip{
			{Row: 10, Bit: 3, Dir: device.OneToZero},
			{Row: 10, Bit: 9, Dir: device.ZeroToOne},
		}})
	st := a.State()
	if got := MergeAggregates(st, AggregateState{}); !reflect.DeepEqual(got, st) {
		t.Errorf("merge with empty: %+v vs %+v", got, st)
	}
	if got := MergeAggregates(AggregateState{}, st); !reflect.DeepEqual(got, st) {
		t.Errorf("empty merge: %+v vs %+v", got, st)
	}
}

func TestAggregateStateRoundTrip(t *testing.T) {
	cfg := tinyStudyConfig(t)
	s := NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for key, st := range s.Snapshot() {
		back := aggregateFromState(st).State()
		if !reflect.DeepEqual(back, st) {
			t.Errorf("cell %v: state round trip changed: %+v vs %+v", key, back, st)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := tinyStudyConfig(t).Fingerprint()
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	// Execution details must not change the fingerprint.
	same := tinyStudyConfig(t)
	same.Concurrency = 7
	same.Shard = ShardPlan{Index: 1, Count: 3}
	same.CheckpointEvery = 2
	same.KeepObservations = true
	same.Progress = func(int, int) {}
	same.Checkpoint = func(map[CellKey]AggregateState) error { return nil }
	if same.Fingerprint() != base {
		t.Error("execution details changed the fingerprint")
	}
	// Result-determining fields must.
	diff := tinyStudyConfig(t)
	diff.RowsPerRegion = 7
	if diff.Fingerprint() == base {
		t.Error("RowsPerRegion change kept the fingerprint")
	}
	diff = tinyStudyConfig(t)
	diff.Sweep = []time.Duration{timing.TRAS}
	if diff.Fingerprint() == base {
		t.Error("sweep change kept the fingerprint")
	}
	diff = tinyStudyConfig(t)
	diff.Patterns = []pattern.Kind{pattern.Combined}
	if diff.Fingerprint() == base {
		t.Error("pattern change kept the fingerprint")
	}
	diff = tinyStudyConfig(t)
	diff.Modules = diff.Modules[:1]
	if diff.Fingerprint() == base {
		t.Error("module change kept the fingerprint")
	}
	diff = tinyStudyConfig(t)
	diff.Opts.TempC = 85
	if diff.Fingerprint() == base {
		t.Error("temperature change kept the fingerprint")
	}
}

// TestShardedRunsMergeBitIdentical is the core determinism property the
// campaign runner rests on: running the grid as n shards and seeding
// the union of their snapshots reproduces the unsharded study's
// aggregates bit for bit (each cell is computed wholly in one shard).
func TestShardedRunsMergeBitIdentical(t *testing.T) {
	whole := NewStudy(tinyStudyConfig(t))
	if err := whole.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()

	for _, n := range []int{2, 3, 5} {
		merged := NewStudy(tinyStudyConfig(t))
		seen := 0
		for i := 0; i < n; i++ {
			cfg := tinyStudyConfig(t)
			cfg.Shard = ShardPlan{Index: i, Count: n}
			sh := NewStudy(cfg)
			if err := sh.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			snap := sh.Snapshot()
			seen += len(snap)
			if err := merged.Seed(snap); err != nil {
				t.Fatal(err)
			}
		}
		if seen != len(want) {
			t.Fatalf("n=%d: shards produced %d cells, want %d (overlap or gap)", n, seen, len(want))
		}
		got := merged.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: merged shards differ from the unsharded run", n)
		}
	}
}

// TestStudyResumeSkipsSeededCells proves Run treats seeded cells as
// done: a deliberately poisoned aggregate must survive the run
// untouched, and only the missing cells are computed.
func TestStudyResumeSkipsSeededCells(t *testing.T) {
	full := NewStudy(tinyStudyConfig(t))
	if err := full.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := full.Snapshot()

	poisonKey := CellKey{Module: "S0", Kind: pattern.DoubleSided, AggOn: timing.TRAS}
	poison, ok := snap[poisonKey]
	if !ok {
		t.Fatal("poison cell missing from snapshot")
	}
	poison.Total += 1000
	resumed := NewStudy(tinyStudyConfig(t))
	if err := resumed.Seed(map[CellKey]AggregateState{poisonKey: poison}); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := resumed.Snapshot()
	if got[poisonKey].Total != poison.Total {
		t.Errorf("seeded cell was recomputed: total %d, want %d", got[poisonKey].Total, poison.Total)
	}
	// Every other cell matches the fresh run exactly.
	for key, st := range snap {
		if key == poisonKey {
			continue
		}
		if !reflect.DeepEqual(got[key], st) {
			t.Errorf("cell %v differs after resume", key)
		}
	}
}

func TestStudyCheckpointCadence(t *testing.T) {
	cfg := tinyStudyConfig(t)
	cfg.Concurrency = 1
	cfg.CheckpointEvery = 4
	var sizes []int
	cfg.Checkpoint = func(cells map[CellKey]AggregateState) error {
		sizes = append(sizes, len(cells))
		return nil
	}
	s := NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 12 cells at cadence 4: checkpoints at 4 and 8 completions plus the
	// final one.
	if len(sizes) != 3 {
		t.Fatalf("got %d checkpoints (%v), want 3", len(sizes), sizes)
	}
	if sizes[len(sizes)-1] != 12 {
		t.Errorf("final checkpoint has %d cells, want 12", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Errorf("checkpoint shrank: %v", sizes)
		}
	}
}

func TestStudyCheckpointErrorAborts(t *testing.T) {
	cfg := tinyStudyConfig(t)
	cfg.Concurrency = 1
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(map[CellKey]AggregateState) error {
		return context.DeadlineExceeded
	}
	if err := NewStudy(cfg).Run(context.Background()); err == nil {
		t.Fatal("checkpoint error did not abort the run")
	}
}

func TestStudyRunRejectsBadShard(t *testing.T) {
	cfg := tinyStudyConfig(t)
	cfg.Shard = ShardPlan{Index: 5, Count: 3}
	if err := NewStudy(cfg).Run(context.Background()); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestSeedRejectsOffGridCells(t *testing.T) {
	s := NewStudy(tinyStudyConfig(t))
	bad := map[CellKey]AggregateState{
		{Module: "NOPE", Kind: pattern.Combined, AggOn: timing.TRAS}: {Total: 1},
	}
	if err := s.Seed(bad); err == nil {
		t.Error("unknown module accepted")
	}
	bad = map[CellKey]AggregateState{
		{Module: "S0", Kind: pattern.Combined, AggOn: 999 * time.Hour}: {Total: 1},
	}
	if err := s.Seed(bad); err == nil {
		t.Error("off-sweep tAggON accepted")
	}
}
