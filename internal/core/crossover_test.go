package core

import (
	"testing"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/dramcmd"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// TestCombinedSingleCrossover locates the tAggON where single-sided
// RowPress overtakes the combined pattern (Fig. 4 / Observation 3: the
// combined pattern wins at small on-times; the curves converge — and
// the combined pattern falls slightly behind — at large ones).
func TestCombinedSingleCrossover(t *testing.T) {
	e := testEngine(t, "S0")
	rows := make([]int, 0, 30)
	for v := 100; v < 130; v++ {
		rows = append(rows, v)
	}
	pt, ok, err := FindCrossover(CrossoverConfig{
		Engine: e,
		A:      pattern.Combined,
		B:      pattern.SingleSided,
		Sweep:  timing.PaperSweep(),
		Rows:   rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no crossover found; the curves must cross inside the sweep")
	}
	// The crossover sits in the press-transition region (paper: the
	// curves converge between ~5 and ~70us).
	if pt.Below < 2*time.Microsecond || pt.Above > 100*time.Microsecond {
		t.Errorf("crossover bracket [%v, %v] outside the expected transition region", pt.Below, pt.Above)
	}
}

// TestNoCrossoverBetweenIdenticalPatterns: combined vs combined never
// crosses.
func TestNoCrossoverBetweenIdenticalPatterns(t *testing.T) {
	e := testEngine(t, "S0")
	_, ok, err := FindCrossover(CrossoverConfig{
		Engine: e,
		A:      pattern.Combined,
		B:      pattern.Combined,
		Sweep:  []time.Duration{timing.TRAS, timing.AggOnTREFI, timing.AggOnNineTREFI},
		Rows:   []int{100, 101, 102},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("identical patterns reported a crossover")
	}
}

func TestFindCrossoverValidation(t *testing.T) {
	e := testEngine(t, "S0")
	if _, _, err := FindCrossover(CrossoverConfig{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, _, err := FindCrossover(CrossoverConfig{Engine: e, Sweep: []time.Duration{timing.TRAS}}); err == nil {
		t.Error("single-point sweep accepted")
	}
	if _, _, err := FindCrossover(CrossoverConfig{
		Engine: e,
		Sweep:  []time.Duration{timing.AggOnTREFI, timing.TRAS},
		Rows:   []int{100},
	}); err == nil {
		t.Error("descending sweep accepted")
	}
	if _, _, err := FindCrossover(CrossoverConfig{
		Engine: e,
		Sweep:  []time.Duration{timing.TRAS, timing.AggOnTREFI},
	}); err == nil {
		t.Error("empty rows accepted")
	}
}

// TestReplayTraceMatchesDirectExecution: replaying a pattern's generated
// trace must disturb the device exactly like the BankEngine does.
func TestReplayTraceMatchesDirectExecution(t *testing.T) {
	mi := mustModule(t, "S1")
	params := device.DefaultParams()
	profile := mi.Profile(params)
	mk := func() *device.Bank {
		b, err := device.NewBank(device.BankConfig{Profile: profile, Params: params, NumRows: 4096})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	spec := testSpec(t, pattern.DoubleSided, timing.TRAS)
	const victim = 800

	// Reference: direct engine execution.
	ref, err := NewBankEngine(mk()).CharacterizeRow(victim, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.NoBitflip {
		t.Fatal("reference did not flip")
	}

	// Replay the same iteration count from a generated trace onto a
	// fresh bank (initialize rows first, as the engine does).
	bank := mk()
	rowBytes := bank.RowBytes()
	for _, init := range []struct {
		row  int
		fill byte
	}{{victim - 1, 0xAA}, {victim + 1, 0xAA}, {victim, 0x55}} {
		if err := bank.WriteRow(init.row, device.FillRow(rowBytes, init.fill), 0); err != nil {
			t.Fatal(err)
		}
	}
	tr := spec.Trace(0, victim, ref.Iterations)
	if err := ReplayTrace(bank, tr); err != nil {
		t.Fatal(err)
	}
	flips, err := bank.CompareRow(victim, tr.End())
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != len(ref.Flips) {
		t.Fatalf("replay produced %d flips, engine %d", len(flips), len(ref.Flips))
	}
	for i := range flips {
		if flips[i].Bit != ref.Flips[i].Bit || flips[i].Dir != ref.Flips[i].Dir {
			t.Errorf("flip %d differs: %v vs %v", i, flips[i], ref.Flips[i])
		}
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if err := ReplayTrace(nil, &dramcmd.Trace{}); err == nil {
		t.Error("nil bank accepted")
	}
	mi := mustModule(t, "S1")
	params := device.DefaultParams()
	bank, err := device.NewBank(device.BankConfig{Profile: mi.Profile(params), Params: params, NumRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(bank, nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := &dramcmd.Trace{}
	bad.Append(dramcmd.Command{Kind: dramcmd.PRE}) // PRE with no open row
	if err := ReplayTrace(bank, bad); err == nil {
		t.Error("illegal trace replayed without error")
	}
}
