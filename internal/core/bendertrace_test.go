package core

import (
	"math"
	"reflect"
	"testing"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// traceEnv builds the engine environment of one trace comparison run.
func traceEnv(t *testing.T, moduleID string, run int64) EngineEnv {
	t.Helper()
	mi, err := chipdb.ByID(moduleID)
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	return EngineEnv{
		Profile:  device.DieProfile(mi.Profile(params), 0),
		Params:   params,
		Timings:  timing.Default(),
		Bank:     0,
		NumRows:  4096,
		RowBytes: 256,
		Run:      run,
	}
}

// mkTraceEngines builds a fast-forwarding and an exact trace engine
// over twin chips of the same environment.
func mkTraceEngines(t *testing.T, env EngineEnv) (fast, exact *traceEngine) {
	t.Helper()
	fe, err := newTraceEngineFor(env, Scenario{ID: "bender", Engine: EngineBenderTrace})
	if err != nil {
		t.Fatal(err)
	}
	ee, err := newTraceEngineFor(env, Scenario{ID: "bender", Engine: EngineBenderTrace, Trace: &TraceSpec{Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	return fe.(*traceEngine), ee.(*traceEngine)
}

// compareTraceFastExact runs one (victim, spec, opts) on both engines
// and asserts byte-identical RowResults and victim-row microstate.
func compareTraceFastExact(t *testing.T, label string, fast, exact *traceEngine, victim int, spec pattern.Spec, opts RunOpts) {
	t.Helper()
	got, err := fast.CharacterizeRow(victim, spec, opts)
	if err != nil {
		t.Fatalf("%s: fast: %v", label, err)
	}
	want, err := exact.CharacterizeRow(victim, spec, opts)
	if err != nil {
		t.Fatalf("%s: exact: %v", label, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: RowResult differs:\nfast:  %+v\nexact: %+v", label, got, want)
	}
	fc := fast.bank.VictimCells(victim)
	ec := exact.bank.VictimCells(victim)
	if len(fc) != len(ec) {
		t.Fatalf("%s: cell counts differ: %d vs %d", label, len(fc), len(ec))
	}
	for i := range fc {
		if math.Float64bits(fc[i].Accumulated()) != math.Float64bits(ec[i].Accumulated()) {
			t.Fatalf("%s: cell %d (bit %d) acc differs: fast %v exact %v",
				label, i, fc[i].Bit, fc[i].Accumulated(), ec[i].Accumulated())
		}
		if fc[i].Flipped() != ec[i].Flipped() {
			t.Fatalf("%s: cell %d flipped differs: fast %v exact %v",
				label, i, fc[i].Flipped(), ec[i].Flipped())
		}
	}
}

// TestTraceEngineFastMatchesExact requires the bender-trace
// fast-forward to reproduce full instruction-by-instruction
// interpretation byte for byte across pattern families, tAggON marks,
// data patterns and run seeds — the trace analogue of
// TestBankFastMatchesExactReplay.
func TestTraceEngineFastMatchesExact(t *testing.T) {
	marks := timing.Table2Marks()
	picks := []int{0, len(marks) / 2, len(marks) - 1}
	kinds := []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined}
	datas := []device.DataPattern{device.Checkerboard, device.RowStripe}
	for _, kind := range kinds {
		for _, mi := range picks {
			spec, err := pattern.New(kind, marks[mi], timing.Default())
			if err != nil {
				t.Fatal(err)
			}
			for _, data := range datas {
				for run := int64(0); run < 2; run++ {
					env := traceEnv(t, "S1", run)
					fast, exact := mkTraceEngines(t, env)
					victim := 100 + int(run)*911
					label := kind.Short() + "@" + marks[mi].String() + "/" + data.String()
					compareTraceFastExact(t, label, fast, exact, victim, spec, RunOpts{Data: data})
				}
			}
		}
	}
}

// TestTraceEngineReuse pins engine reuse across rows, specs and
// repeated visits (the campaign shape: one engine per run, scratch and
// interpreter state recycled between cells).
func TestTraceEngineReuse(t *testing.T) {
	env := traceEnv(t, "M4", 1)
	fast, exact := mkTraceEngines(t, env)
	spec, err := pattern.New(pattern.Combined, timing.AggOnTREFI, timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := pattern.New(pattern.DoubleSided, timing.Table2Marks()[0], timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for _, s := range []pattern.Spec{spec, spec2} {
			for _, victim := range []int{512, 513, 512} {
				compareTraceFastExact(t, s.String(), fast, exact, victim, s, RunOpts{})
			}
		}
	}
}

// TestTraceEngineScenarioDispatch covers the scenario-axis entry
// point: "bender-trace" resolves through newScenarioEngine and the
// engine honors the scenario's data/temperature overrides.
func TestTraceEngineScenarioDispatch(t *testing.T) {
	env := traceEnv(t, "S1", 0)
	eng, err := newScenarioEngine(env, Scenario{ID: "bender", Engine: EngineBenderTrace})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := pattern.New(pattern.DoubleSided, timing.Table2Marks()[0], timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CharacterizeRow(500, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim != 500 {
		t.Fatalf("victim = %d, want 500", res.Victim)
	}
	// A second engine built from the same env must reproduce the result
	// exactly (determinism across engine constructions).
	eng2, err := newScenarioEngine(env, Scenario{ID: "bender", Engine: EngineBenderTrace})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.CharacterizeRow(500, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("rebuilt engine diverged:\n%+v\n%+v", res, res2)
	}
}
