package core

import (
	"math"
	"math/rand"
	"testing"
)

// randBankDelta draws a non-negative steady delta biased toward the
// decision boundaries of the bulk advance relative to an accumulator
// in the binade of acc: exact half-ulp ties (the round-half-even
// fallback), whole-ulp multiples, deltas under half an ulp (no-ops),
// deltas that exit the binade in one add, subnormals and zeros.
func randBankDelta(r *rand.Rand, acc float64) float64 {
	exp := int(math.Float64bits(acc)>>52&0x7ff) - 1023
	switch r.Intn(8) {
	case 0:
		return 0
	case 1:
		return math.Float64frombits(uint64(r.Intn(1<<20)) + 1) // subnormal
	case 2: // exact half-ulp remainder in acc's binade
		s := r.Intn(53) + 1
		q := uint64(r.Int63n(1 << 20))
		return math.Ldexp(float64(q<<uint(s)|1<<uint(s-1)), exp-52-s)
	case 3: // whole number of acc-binade ulps
		return math.Ldexp(float64(r.Int63n(1<<20)+1), exp-52)
	case 4: // under half an ulp: rounds to a no-op every step
		return math.Ldexp(1, exp-54-r.Intn(40))
	case 5: // at or past the binade top: one add exits
		return math.Ldexp(float64(r.Int63n(8)+1), exp+r.Intn(3))
	default:
		e := exp - r.Intn(40)
		if e < -1022 {
			e = -1022
		}
		return math.Float64frombits(uint64(e+1023)<<52 | r.Uint64()&(1<<52-1))
	}
}

// checkBankBatchParity drives one random accumulator/delta-set through
// the float reference and the integer projection and requires
// bit-identical advances, flip iterations and jump accumulators.
func checkBankBatchParity(t *testing.T, seed int64, accBits uint64, nDeltas uint8, maxK uint16) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	// A non-negative finite accumulator with headroom below the top
	// binades, like every real damage trajectory.
	accBits = accBits&^(1<<63) | 2<<52
	accBits &^= 0x7fd << 52
	acc := math.Float64frombits(accBits)

	n := int(nDeltas%24) + 1
	steady := make([]float64, n)
	for i := range steady {
		steady[i] = randBankDelta(r, acc)
	}
	var bs bankSolve
	if !bs.project(steady) {
		for _, d := range steady {
			if math.IsInf(d, 1) {
				return // legitimately rejected; float path keeps it
			}
		}
		t.Fatalf("project rejected an all-finite non-negative row: %v", steady)
	}
	mk := int64(maxK) + 1

	wantNext, wantK := bulkIterations(acc, steady, mk)
	gotNext, gotK, capped := bulkIterationsPre(acc, bs.md, bs.ed, mk)
	if math.Float64bits(wantNext) != math.Float64bits(gotNext) || wantK != gotK {
		t.Fatalf("bulk(acc=%x, mk=%d): float (%x, %d) vs integer (%x, %d)\nsteady=%v",
			acc, mk, math.Float64bits(wantNext), wantK, math.Float64bits(gotNext), gotK, steady)
	}
	if capped {
		// The capped hint's contract: a re-probe from the advanced
		// accumulator would consume nothing.
		if _, k2, _ := bulkIterationsPre(gotNext, bs.md, bs.ed, mk-gotK); k2 != 0 {
			t.Fatalf("capped advance (k=%d) followed by a fruitful re-probe (k=%d)", gotK, k2)
		}
	}

	first := make([]float64, n)
	for i := range first {
		first[i] = randBankDelta(r, 0.5)
	}
	wantIt, wantOK := flipIteration(first, steady, mk)
	gotIt, gotOK := flipIterationPre(first, steady, bs.md, bs.ed, mk)
	if wantIt != gotIt || wantOK != gotOK {
		t.Fatalf("flipIteration(mk=%d): float (%d, %v) vs integer (%d, %v)\nfirst=%v\nsteady=%v",
			mk, wantIt, wantOK, gotIt, gotOK, first, steady)
	}
	for _, iters := range []int64{0, 1, 2, mk / 2, mk} {
		wantAcc := accAfter(first, steady, iters)
		gotAcc := accAfterPre(first, steady, bs.md, bs.ed, iters)
		if math.Float64bits(wantAcc) != math.Float64bits(gotAcc) {
			t.Fatalf("accAfter(%d): float %x vs integer %x\nfirst=%v\nsteady=%v",
				iters, math.Float64bits(wantAcc), math.Float64bits(gotAcc), first, steady)
		}
	}
}

func FuzzBankBatchParity(f *testing.F) {
	f.Add(int64(1), uint64(0x3fe8000000000000), uint8(3), uint16(100))
	f.Add(int64(2), uint64(0x0010000000000000), uint8(1), uint16(1))
	f.Add(int64(3), uint64(0x3ff0000000000000), uint8(23), uint16(65535))
	f.Add(int64(4), uint64(1), uint8(7), uint16(0)) // subnormal-range acc bits
	f.Add(int64(0x5eed), uint64(0x3f50000000000000), uint8(11), uint16(4096))
	f.Fuzz(checkBankBatchParity)
}

// TestBankBatchParity always runs a deterministic slice of the fuzz
// domain, so `go test` alone exercises the projection against the
// float reference.
func TestBankBatchParity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 256; i++ {
		checkBankBatchParity(t, r.Int63(), r.Uint64(), uint8(r.Intn(256)), uint16(r.Intn(1<<16)))
	}
}

// TestBankSolveProjectRejects pins the projection's fallback triggers:
// any negative (including -0), NaN or infinite delta sends the whole
// profile to the float reference path.
func TestBankSolveProjectRejects(t *testing.T) {
	var bs bankSolve
	for _, bad := range []float64{-1, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN()} {
		if bs.project([]float64{0.25, bad, 0.5}) {
			t.Errorf("project accepted a row containing %v", bad)
		}
	}
	if !bs.project([]float64{0, 0x1p-1074, 0.5, math.MaxFloat64}) {
		t.Errorf("project rejected a row of finite non-negative deltas")
	}
}
