package core_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// partialTestConfig is a one-module grid: 1 x 3 patterns x 3 tAggON
// points = 9 cells.
func partialTestConfig(t *testing.T) core.StudyConfig {
	t.Helper()
	mi, err := chipdb.ByID("S0")
	if err != nil {
		t.Fatal(err)
	}
	return core.StudyConfig{
		Modules:       []chipdb.ModuleInfo{mi},
		Sweep:         []time.Duration{timing.TRAS, 7800 * time.Nanosecond, timing.AggOnNineTREFI},
		RowsPerRegion: 2,
		Dies:          1,
		Runs:          1,
	}
}

// halfSeededStudy runs the full grid once, then seeds only shard 1/2
// of the cells into a fresh study — the state a live distributed
// campaign is in mid-flight.
func halfSeededStudy(t *testing.T) (full, half *core.Study) {
	t.Helper()
	full = core.NewStudy(partialTestConfig(t))
	if err := full.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cells := full.Snapshot()
	shard := core.ShardPlan{Index: 0, Count: 2}
	kept := make(map[core.CellKey]core.AggregateState)
	for idx, key := range full.Cells() {
		if shard.Contains(idx) {
			kept[key] = cells[key]
		}
	}
	half = core.NewStudy(partialTestConfig(t))
	if err := half.Seed(kept); err != nil {
		t.Fatal(err)
	}
	return full, half
}

func TestCoverage(t *testing.T) {
	full, half := halfSeededStudy(t)
	if cov := full.Coverage(); !cov.Complete() || cov.Done != 9 || cov.Total != 9 {
		t.Fatalf("full coverage: %+v", cov)
	}
	cov := half.Coverage()
	if cov.Complete() || cov.Done != 5 || cov.Total != 9 {
		t.Fatalf("half coverage: %+v", cov)
	}
	if got := cov.String(); !strings.Contains(got, "5 of 9 cells") {
		t.Fatalf("coverage string: %q", got)
	}
}

func TestPartialTable2MarksMissingCellsPending(t *testing.T) {
	full, half := halfSeededStudy(t)

	// On a complete grid the partial extractor agrees with the strict
	// one exactly, and nothing is pending.
	strict, err := full.Table2()
	if err != nil {
		t.Fatal(err)
	}
	prows, cov := full.PartialTable2()
	if !cov.Complete() {
		t.Fatalf("complete study reported %v", cov)
	}
	for i, pr := range prows {
		if pr.Pending != [5]bool{} {
			t.Fatalf("complete study has pending marks: %+v", pr.Pending)
		}
		if !reflect.DeepEqual(pr.Table2Row, strict[i]) {
			t.Fatalf("partial row %d differs from strict extraction", i)
		}
	}

	// The half grid: strict errors, partial marks the holes.
	if _, err := half.Table2(); err == nil {
		t.Fatal("strict Table2 on a partial grid should fail")
	}
	prows, cov = half.PartialTable2()
	if cov.Complete() {
		t.Fatal("half study reported complete coverage")
	}
	anyPending, anyMeasured := false, false
	for _, pr := range prows {
		for j, p := range pr.Pending {
			if p {
				anyPending = true
				// A pending mark must correspond to a truly absent cell.
				if _, ok := half.Result(pr.Info.ID, markKind(j), markAggOn(j)); ok {
					t.Fatalf("mark %d flagged pending but has a result", j)
				}
			} else {
				anyMeasured = true
			}
		}
	}
	if !anyPending || !anyMeasured {
		t.Fatalf("half grid should have both pending and measured marks (pending=%v measured=%v)", anyPending, anyMeasured)
	}
}

// markKind/markAggOn mirror core's Table 2 mark order (documented by
// core.Table2Marks).
func markKind(j int) pattern.Kind {
	if j >= 3 {
		return pattern.Combined
	}
	return pattern.DoubleSided
}

func markAggOn(j int) time.Duration {
	switch j {
	case 0:
		return 36 * time.Nanosecond
	case 1, 3:
		return 7800 * time.Nanosecond
	default:
		return 70200 * time.Nanosecond
	}
}

func TestPartialFig4CountsPendingModules(t *testing.T) {
	full, half := halfSeededStudy(t)

	strict, err := full.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	p := full.PartialFig4()
	if !p.Coverage.Complete() {
		t.Fatalf("complete study reported %v", p.Coverage)
	}
	if !reflect.DeepEqual(p.Data, strict) {
		t.Fatal("partial Fig4 on a complete grid differs from strict Fig4")
	}
	for _, perPattern := range p.Pending {
		for _, pend := range perPattern {
			for i, n := range pend {
				if n != 0 {
					t.Fatalf("complete grid has %d pending modules at sweep point %d", n, i)
				}
			}
		}
	}

	if _, err := half.Fig4(); err == nil {
		t.Fatal("strict Fig4 on a partial grid should fail")
	}
	p = half.PartialFig4()
	totalPending := 0
	for _, perPattern := range p.Pending {
		for _, pend := range perPattern {
			for _, n := range pend {
				totalPending += n
			}
		}
	}
	// The half study is missing 4 of 9 cells, each one module wide.
	if totalPending != 4 {
		t.Fatalf("pending module-cells = %d, want 4", totalPending)
	}
}
