package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rowfuse/internal/pattern"
)

// CellKey identifies one (module, pattern, tAggON, scenario) cell of a
// campaign's cell grid. It is the unit of sharding and checkpointing:
// each cell is computed wholly within one shard, so merging shard
// checkpoints is bit-identical to a single monolithic run.
type CellKey struct {
	Module string
	Kind   pattern.Kind
	AggOn  time.Duration
	// Scenario is the scenario ID ("" = the default scenario, which is
	// what every pre-scenario campaign's keys carry).
	Scenario string
}

// String renders the key as "module/pattern/tAggON" with a "/scenario"
// suffix for non-default scenarios.
func (k CellKey) String() string {
	if k.Scenario == "" {
		return fmt.Sprintf("%s/%s/%v", k.Module, k.Kind.Short(), k.AggOn)
	}
	return fmt.Sprintf("%s/%s/%v/%s", k.Module, k.Kind.Short(), k.AggOn, k.Scenario)
}

// ShardPlan deterministically partitions a campaign's cell grid into
// Count disjoint shards so independent processes (or machines) can each
// run one. The zero value means "the whole grid".
type ShardPlan struct {
	// Index is the shard to run, 0-based, in [0, Count).
	Index int
	// Count is the total number of shards (<= 1 means unsharded).
	Count int
}

// ParseShard parses the CLI form "i/n" with 1-based i (e.g. "2/3" is
// the second of three shards).
func ParseShard(s string) (ShardPlan, error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return ShardPlan{}, fmt.Errorf("core: shard %q not of the form i/n", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(lhs))
	if err != nil {
		return ShardPlan{}, fmt.Errorf("core: shard index %q: %w", lhs, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(rhs))
	if err != nil {
		return ShardPlan{}, fmt.Errorf("core: shard count %q: %w", rhs, err)
	}
	if n < 1 || i < 1 || i > n {
		return ShardPlan{}, fmt.Errorf("core: shard %q out of range (want 1 <= i <= n)", s)
	}
	return ShardPlan{Index: i - 1, Count: n}, nil
}

// Validate checks Index against Count.
func (p ShardPlan) Validate() error {
	if p.Count < 0 || p.Index < 0 || (p.Count <= 1 && p.Index != 0) || (p.Count > 1 && p.Index >= p.Count) {
		return fmt.Errorf("core: shard %d/%d out of range", p.Index+1, p.Count)
	}
	return nil
}

// IsSharded reports whether the plan selects a strict subset of cells.
func (p ShardPlan) IsSharded() bool { return p.Count > 1 }

// Contains reports whether cell index i of the grid belongs to this
// shard (round-robin assignment, which balances the per-pattern and
// per-tAggON cost variation across shards).
func (p ShardPlan) Contains(i int) bool {
	if !p.IsSharded() {
		return true
	}
	return i%p.Count == p.Index
}

// String renders the 1-based CLI form "i/n" ("" when unsharded).
func (p ShardPlan) String() string {
	if !p.IsSharded() {
		return ""
	}
	return fmt.Sprintf("%d/%d", p.Index+1, p.Count)
}

// Cells enumerates the study's full cell grid in the deterministic
// order sharding indexes it: modules x patterns x sweep x scenarios,
// as configured. Every shard of every process sees the same order; the
// scenario axis is innermost so a single-scenario grid enumerates
// exactly like a pre-scenario one.
func (s *Study) Cells() []CellKey {
	scens := s.cfg.scenarios()
	var cells []CellKey
	if s.cfg.Fleet != nil {
		// Fleet campaigns put chip blocks on the module axis; block
		// order is ascending so checkpoint sort order, grid order and
		// chip order all agree.
		for b := 0; b < s.cfg.Fleet.Blocks(); b++ {
			id := FleetBlockID(b)
			for _, k := range s.cfg.Patterns {
				for _, t := range s.cfg.Sweep {
					for _, sc := range scens {
						cells = append(cells, CellKey{Module: id, Kind: k, AggOn: t, Scenario: sc.ID})
					}
				}
			}
		}
		return cells
	}
	for _, mi := range s.cfg.Modules {
		for _, k := range s.cfg.Patterns {
			for _, t := range s.cfg.Sweep {
				for _, sc := range scens {
					cells = append(cells, CellKey{Module: mi.ID, Kind: k, AggOn: t, Scenario: sc.ID})
				}
			}
		}
	}
	return cells
}

// Fingerprint hashes every result-determining field of the
// configuration: the module inventory (including the paper ground truth
// each profile is calibrated against), the disturbance parameters,
// timings, sweep, patterns, sampling depth and run options. Execution
// details (shard, concurrency, checkpoint cadence, progress callbacks)
// are deliberately excluded — two shards of one campaign share a
// fingerprint, and a checkpoint may only be resumed or merged under the
// fingerprint it was written with.
func (c StudyConfig) Fingerprint() string {
	c = c.withDefaults()
	h := sha256.New()
	for _, mi := range c.Modules {
		fmt.Fprintf(h, "module %+v\n", mi)
	}
	fmt.Fprintf(h, "params %+v\n", c.Params)
	fmt.Fprintf(h, "timings %+v\n", c.Timings)
	for _, t := range c.Sweep {
		fmt.Fprintf(h, "sweep %d\n", int64(t))
	}
	for _, k := range c.Patterns {
		fmt.Fprintf(h, "pattern %d\n", int(k))
	}
	fmt.Fprintf(h, "rows %d dies %d runs %d bank %d\n", c.RowsPerRegion, c.Dies, c.Runs, c.Bank)
	fmt.Fprintf(h, "opts %+v\n", c.Opts)
	// The scenario axis joins the hash only when it deviates from the
	// default, so every pre-scenario fingerprint — and with it every
	// checkpoint and manifest in the field — stays valid (golden-pinned
	// by TestScenarioGoldenFingerprints).
	if !c.scenariosAreDefault() {
		for _, sc := range c.Scenarios {
			fmt.Fprintf(h, "scenario %s\n", sc.fingerprint())
		}
	}
	// Like the scenario axis, the fleet plan joins the hash only when
	// present, so every grid-campaign fingerprint is unchanged.
	if c.Fleet != nil {
		fmt.Fprintf(h, "fleet %+v\n", *c.Fleet)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
