//go:build amd64 && !purego

package core

import "rowfuse/internal/cpu"

// The AVX2 kernels in kernels_amd64.s. Each processes n/4 full YMM
// lanes; callers guarantee n is a multiple of solveLanes. noescape
// keeps the solveBatch-owned args struct off the heap.
//
//go:noescape
func damageSplitAVX2(k *damageKernArgs)

//go:noescape
func damageFusedAVX2(k *damageKernArgs)

//go:noescape
func damageSplitAVX512(k *damageKernArgs)

//go:noescape
func damageFusedAVX512(k *damageKernArgs)

// pickDamageKernels chooses the kernel for the running CPU: AVX2
// assembly when CPUID says so (whatever GOAMD64 the binary was
// compiled for), otherwise the scalar reference. The AVX-512 kernels
// exist and are kept bit-exact by the parity tests, but AVX2 stays the
// default even where AVX-512 is available: the damage kernels are
// divide-bound, VDIVPD's per-element throughput does not improve at
// 512 bits on current parts, and row batches are a handful of ZMM
// iterations — too short to amortize the wider pipeline's startup.
// The selection is per-process and happens before main.
func pickDamageKernels() (split, fused func(*damageKernArgs), level string) {
	if cpu.X86.HasAVX2 {
		return damageSplitAVX2, damageFusedAVX2, "avx2"
	}
	return damageSplitScalar, damageFusedScalar, "scalar"
}

// bankFastEnabled turns on the integer-stepping bulk fast-forward
// solver (bankbatch.go); purego builds keep the float reference.
const bankFastEnabled = true
