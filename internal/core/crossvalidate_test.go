package core

import (
	"sort"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// TestEnginesAgree is the dual-execution-path cross-validation promised
// in DESIGN.md: the closed-form AnalyticEngine and the command-by-command
// BankEngine must produce identical ACmin, iteration counts, first-flip
// times and flip sets for the same configuration.
func TestEnginesAgree(t *testing.T) {
	mi, err := chipdb.ByID("S1")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	const numRows = 4096

	analytic, err := NewAnalyticEngine(AnalyticConfig{
		Profile: profile,
		Params:  params,
		NumRows: numRows,
	})
	if err != nil {
		t.Fatal(err)
	}

	aggOns := []time.Duration{
		timing.TRAS,
		636 * time.Nanosecond,
		timing.AggOnTREFI,
		timing.AggOnNineTREFI,
	}
	victims := []int{100, 1777, 3000}
	for _, kind := range []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined} {
		for _, aggOn := range aggOns {
			spec, err := pattern.New(kind, aggOn, timing.Default())
			if err != nil {
				t.Fatal(err)
			}
			for _, victim := range victims {
				// A fresh bank per case keeps device state independent.
				bank, err := device.NewBank(device.BankConfig{
					Profile: profile,
					Params:  params,
					NumRows: numRows,
				})
				if err != nil {
					t.Fatal(err)
				}
				be := NewBankEngine(bank)

				want, err := analytic.CharacterizeRow(victim, spec, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := be.CharacterizeRow(victim, spec, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}

				label := kind.Short() + "@" + aggOn.String()
				if got.NoBitflip != want.NoBitflip {
					t.Errorf("%s victim %d: NoBitflip bank=%v analytic=%v", label, victim, got.NoBitflip, want.NoBitflip)
					continue
				}
				if got.NoBitflip {
					continue
				}
				if got.ACmin != want.ACmin {
					t.Errorf("%s victim %d: ACmin bank=%d analytic=%d", label, victim, got.ACmin, want.ACmin)
				}
				if got.Iterations != want.Iterations {
					t.Errorf("%s victim %d: iterations bank=%d analytic=%d", label, victim, got.Iterations, want.Iterations)
				}
				if got.TimeToFirst != want.TimeToFirst {
					t.Errorf("%s victim %d: time bank=%v analytic=%v", label, victim, got.TimeToFirst, want.TimeToFirst)
				}
				if !sameFlips(got.Flips, want.Flips) {
					t.Errorf("%s victim %d: flips bank=%v analytic=%v", label, victim, got.Flips, want.Flips)
				}
			}
		}
	}
}

func sameFlips(a, b []device.Bitflip) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]uint64, len(a))
	kb := make([]uint64, len(b))
	for i := range a {
		ka[i] = a[i].Key()
		kb[i] = b[i].Key()
	}
	sort.Slice(ka, func(i, j int) bool { return ka[i] < ka[j] })
	sort.Slice(kb, func(i, j int) bool { return kb[i] < kb[j] })
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestEnginesAgreeOnDirections additionally checks flip direction and
// mechanism attribution between the paths.
func TestEnginesAgreeOnDirections(t *testing.T) {
	mi, err := chipdb.ByID("M4")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	analytic, err := NewAnalyticEngine(AnalyticConfig{Profile: profile, Params: params, NumRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := pattern.New(pattern.Combined, timing.AggOnTREFI, timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	bank, err := device.NewBank(device.BankConfig{Profile: profile, Params: params, NumRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a, err := analytic.CharacterizeRow(512, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBankEngine(bank).CharacterizeRow(512, spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NoBitflip || b.NoBitflip {
		t.Fatal("expected flips on M4 at 7.8us")
	}
	if len(a.Flips) != len(b.Flips) {
		t.Fatalf("flip counts differ: %d vs %d", len(a.Flips), len(b.Flips))
	}
	for i := range a.Flips {
		if a.Flips[i].Dir != b.Flips[i].Dir {
			t.Errorf("flip %d direction differs: %v vs %v", i, a.Flips[i].Dir, b.Flips[i].Dir)
		}
		if a.Flips[i].Mech != b.Flips[i].Mech {
			t.Errorf("flip %d mechanism differs: %v vs %v", i, a.Flips[i].Mech, b.Flips[i].Mech)
		}
	}
}
