package core

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// kernelUnderTest names one vector kernel pair the running binary can
// execute; vectorKernelsUnderTest (per-arch test files) enumerates
// them — including implementations the dispatcher does not prefer,
// like AVX-512, so their bit-exactness stays pinned.
type kernelUnderTest struct {
	name         string
	split, fused func(*damageKernArgs)
}

// TestDamageKernArgsLayout pins the byte offsets the assembly kernels
// index. A moved field compiles fine in Go and silently reads the
// wrong operand in assembly, so the layout is asserted, not assumed.
func TestDamageKernArgsLayout(t *testing.T) {
	var k damageKernArgs
	for _, f := range []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"st", unsafe.Offsetof(k.st), 0},
		{"fi", unsafe.Offsetof(k.fi), 8},
		{"tot", unsafe.Offsetof(k.tot), 16},
		{"ft", unsafe.Offsetof(k.ft), 24},
		{"synS", unsafe.Offsetof(k.synS), 32},
		{"synF", unsafe.Offsetof(k.synF), 40},
		{"ws", unsafe.Offsetof(k.ws), 48},
		{"th", unsafe.Offsetof(k.th), 56},
		{"tp", unsafe.Offsetof(k.tp), 64},
		{"boost", unsafe.Offsetof(k.boost), 72},
		{"se", unsafe.Offsetof(k.se), 80},
		{"fe", unsafe.Offsetof(k.fe), 88},
		{"weakSide", unsafe.Offsetof(k.weakSide), 96},
		{"tf", unsafe.Offsetof(k.tf), 104},
		{"n", unsafe.Offsetof(k.n), 112},
		{"init", unsafe.Offsetof(k.init), 120},
	} {
		if f.got != f.want {
			t.Errorf("offsetof(damageKernArgs.%s) = %d, assembly expects %d", f.name, f.got, f.want)
		}
	}
	if s := unsafe.Sizeof(k); s != 128 {
		t.Errorf("sizeof(damageKernArgs) = %d, want 128", s)
	}
}

// kernProblem is one randomized kernel invocation: padded operand rows
// plus independently mutated output copies per implementation.
type kernProblem struct {
	synS, synF, ws, th, tp      []float64
	boost, se, fe, weakSide, tf float64
	n                           int
	init                        bool
}

// positiveKernFloat draws a positive float64 biased toward the values
// the bit-exactness contract calls out: exact ones, powers of two,
// subnormals, the smallest normal, +Inf, and ordinary normals.
func positiveKernFloat(r *rand.Rand) float64 {
	switch r.Intn(12) {
	case 0:
		return 1
	case 1:
		return math.Ldexp(1, r.Intn(120)-60) // exact power of two
	case 2:
		return math.Float64frombits(uint64(r.Intn(1<<30)) + 1) // subnormal
	case 3:
		return 0x1p-1022 // smallest normal
	case 4:
		return math.Inf(1)
	case 5:
		return math.Float64frombits(r.Uint64()&(1<<52-1) | 1<<52) // huge ulp-dense
	default:
		exp := uint64(r.Intn(0x5ff) + 0x100) // well inside the normal range
		return math.Float64frombits(exp<<52 | r.Uint64()&(1<<52-1))
	}
}

// nonNegKernFloat is positiveKernFloat with occasional exact zeros —
// legal for the synergy/side factors and exposures, and the path that
// manufactures NaNs (0 * Inf) whose bits must still agree.
func nonNegKernFloat(r *rand.Rand) float64 {
	if r.Intn(8) == 0 {
		return 0
	}
	return positiveKernFloat(r)
}

func randKernProblem(r *rand.Rand, laneGroups int, init bool) *kernProblem {
	n := laneGroups * solveLanes
	buf := func(gen func(*rand.Rand) float64) []float64 {
		// Allocate one extra lane group filled with values no kernel
		// may read: n is exact, not a minimum.
		s := make([]float64, n+solveLanes)
		for i := range s {
			s[i] = gen(r)
		}
		return s
	}
	return &kernProblem{
		synS: buf(nonNegKernFloat), synF: buf(nonNegKernFloat),
		ws: buf(nonNegKernFloat), th: buf(positiveKernFloat), tp: buf(positiveKernFloat),
		boost: nonNegKernFloat(r), se: nonNegKernFloat(r), fe: nonNegKernFloat(r),
		weakSide: nonNegKernFloat(r), tf: nonNegKernFloat(r),
		n: n, init: init,
	}
}

// outputs is one implementation's private copy of the four output rows,
// pre-seeded identically across implementations so the accumulate mode
// (init = false) starts from the same bits everywhere.
type outputs struct {
	st, fi, tot, ft []float64
}

func (p *kernProblem) newOutputs(r *rand.Rand) *outputs {
	row := func() []float64 {
		s := make([]float64, p.n+solveLanes)
		for i := range s {
			s[i] = nonNegKernFloat(r)
		}
		return s
	}
	return &outputs{st: row(), fi: row(), tot: row(), ft: row()}
}

func (o *outputs) clone() *outputs {
	c := &outputs{}
	c.st = append(c.st, o.st...)
	c.fi = append(c.fi, o.fi...)
	c.tot = append(c.tot, o.tot...)
	c.ft = append(c.ft, o.ft...)
	return c
}

func (p *kernProblem) args(o *outputs) damageKernArgs {
	k := damageKernArgs{
		st: &o.st[0], fi: &o.fi[0], tot: &o.tot[0], ft: &o.ft[0],
		synS: &p.synS[0], synF: &p.synF[0], ws: &p.ws[0],
		th: &p.th[0], tp: &p.tp[0],
		boost: p.boost, se: p.se, fe: p.fe, weakSide: p.weakSide, tf: p.tf,
		n: int64(p.n),
	}
	if p.init {
		k.init = 1
	}
	return k
}

// diffRow returns the first lane where two rows differ bitwise, or -1.
// Bit equality (not ==) so NaN payloads and zero signs count.
func diffRow(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

func checkKernelParity(t *testing.T, impl, row string, p *kernProblem, ref, got []float64) {
	t.Helper()
	if i := diffRow(ref, got); i >= 0 {
		t.Errorf("%s %s[%d]: got %x (%v), scalar %x (%v) [n=%d init=%v boost=%x se=%x fe=%x weakSide=%x tf=%x synS=%x synF=%x ws=%x th=%x tp=%x]",
			impl, row, i, math.Float64bits(got[i]), got[i], math.Float64bits(ref[i]), ref[i],
			p.n, p.init, p.boost, p.se, p.fe, p.weakSide, p.tf,
			p.synS[i], p.synF[i], p.ws[i], p.th[i], p.tp[i])
	}
}

// runKernelParity checks every compiled-in vector kernel — and the
// dispatched entry points, whatever they resolved to — against the
// scalar reference on one randomized problem, in both split and fused
// form and in both accumulate and init-store mode.
func runKernelParity(t *testing.T, r *rand.Rand, laneGroups int, init bool) {
	t.Helper()
	p := randKernProblem(r, laneGroups, init)
	base := p.newOutputs(r)

	refSplit := base.clone()
	ks := p.args(refSplit)
	damageSplitScalar(&ks)
	refFused := base.clone()
	kf := p.args(refFused)
	damageFusedScalar(&kf)

	impls := append(vectorKernelsUnderTest(), kernelUnderTest{"dispatched:" + kernelLevel, damageSplit, damageFused})
	for _, impl := range impls {
		got := base.clone()
		k := p.args(got)
		impl.split(&k)
		checkKernelParity(t, impl.name+"/split", "st", p, refSplit.st, got.st)
		checkKernelParity(t, impl.name+"/split", "fi", p, refSplit.fi, got.fi)
		checkKernelParity(t, impl.name+"/split", "tot", p, refSplit.tot, got.tot)
		checkKernelParity(t, impl.name+"/split", "ft", p, refSplit.ft, got.ft)

		got = base.clone()
		k = p.args(got)
		impl.fused(&k)
		checkKernelParity(t, impl.name+"/fused", "st", p, refFused.st, got.st)
		checkKernelParity(t, impl.name+"/fused", "fi", p, refFused.fi, got.fi) // untouched by contract
		checkKernelParity(t, impl.name+"/fused", "tot", p, refFused.tot, got.tot)
		checkKernelParity(t, impl.name+"/fused", "ft", p, refFused.ft, got.ft)
	}
}

func FuzzDamageKernelParity(f *testing.F) {
	f.Add(int64(1), uint8(1), false)
	f.Add(int64(2), uint8(1), true)
	f.Add(int64(3), uint8(0), false) // n = 0: kernels must not touch memory
	f.Add(int64(4), uint8(3), true)
	f.Add(int64(5), uint8(7), false)
	f.Add(int64(0x5eed), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, laneGroups uint8, init bool) {
		runKernelParity(t, rand.New(rand.NewSource(seed)), int(laneGroups%8), init)
	})
}

// TestDamageKernelParity is the deterministic slice of the fuzz domain
// that always runs: plenty of seeds across sizes and both modes.
func TestDamageKernelParity(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		r := rand.New(rand.NewSource(seed))
		runKernelParity(t, r, int(seed%5), seed%2 == 0)
	}
}

// TestDamageKernelAllocs pins the kernels to zero heap allocations per
// call. The args struct is hoisted like solveBatch hoists its own —
// dispatch through a func variable hides the noescape pragma from the
// compiler, so a per-call struct would escape.
func TestDamageKernelAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := randKernProblem(r, 4, false)
	o := p.newOutputs(r)
	ks := p.args(o)
	kf := p.args(o)
	if n := testing.AllocsPerRun(200, func() {
		damageSplit(&ks)
		damageFused(&kf)
	}); n != 0 {
		t.Fatalf("damage kernels allocate %v times per call, want 0", n)
	}
}
