package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func tinyStudyConfig(t *testing.T) StudyConfig {
	t.Helper()
	s0 := mustModule(t, "S0")
	m4 := mustModule(t, "M4")
	return StudyConfig{
		Modules:       []chipdb.ModuleInfo{s0, m4},
		Sweep:         []time.Duration{timing.TRAS, timing.AggOnTREFI},
		RowsPerRegion: 6,
		Dies:          1,
		Runs:          1,
	}
}

func TestStudyRunPopulatesAllCells(t *testing.T) {
	cfg := tinyStudyConfig(t)
	cfg.KeepObservations = true
	s := NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, mi := range s.Config().Modules {
		for _, k := range s.Config().Patterns {
			for _, aggOn := range s.Config().Sweep {
				r, ok := s.Result(mi.ID, k, aggOn)
				if !ok {
					t.Fatalf("missing cell %s/%s/%v", mi.ID, k.Short(), aggOn)
				}
				if r.Observations() != 18 { // 3 regions x 6 rows x 1 die x 1 run
					t.Errorf("cell %s/%s/%v has %d observations, want 18", mi.ID, k.Short(), aggOn, r.Observations())
				}
				if len(r.Rows) != 18 {
					t.Errorf("cell %s/%s/%v kept %d raw observations, want 18", mi.ID, k.Short(), aggOn, len(r.Rows))
				}
			}
		}
	}
	// Without KeepObservations, raw rows are dropped but aggregates stay.
	s2 := NewStudy(tinyStudyConfig(t))
	if err := s2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	r2, _ := s2.Result("S0", pattern.DoubleSided, timing.TRAS)
	if len(r2.Rows) != 0 {
		t.Errorf("raw observations retained without KeepObservations: %d", len(r2.Rows))
	}
	if r2.Observations() != 18 {
		t.Errorf("aggregate count = %d, want 18", r2.Observations())
	}
}

func TestStudyDeterministicAcrossConcurrency(t *testing.T) {
	cfgSerial := tinyStudyConfig(t)
	cfgSerial.Concurrency = 1
	cfgParallel := tinyStudyConfig(t)
	cfgParallel.Concurrency = 8

	a := NewStudy(cfgSerial)
	b := NewStudy(cfgParallel)
	if err := a.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, mi := range cfgSerial.Modules {
		for _, k := range []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined} {
			ra, _ := a.Result(mi.ID, k, timing.TRAS)
			rb, _ := b.Result(mi.ID, k, timing.TRAS)
			sa, sb := ra.ACminStats(), rb.ACminStats()
			if sa.Mean != sb.Mean || sa.Min != sb.Min {
				t.Errorf("%s/%s: serial vs parallel stats differ: %+v vs %+v", mi.ID, k.Short(), sa, sb)
			}
		}
	}
}

func TestStudyContextCancellation(t *testing.T) {
	cfg := StudyConfig{
		Modules:       chipdb.Modules(),
		RowsPerRegion: 200,
		Dies:          1,
		Runs:          3,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewStudy(cfg)
	if err := s.Run(ctx); err == nil {
		t.Error("cancelled study returned nil error")
	}
}

func TestMustResultError(t *testing.T) {
	s := NewStudy(tinyStudyConfig(t))
	if _, err := s.mustResult("S0", pattern.Combined, timing.AggOnMax); err == nil {
		t.Error("mustResult on unpopulated cell succeeded")
	}
}

func TestModuleResultAggregates(t *testing.T) {
	s := NewStudy(tinyStudyConfig(t))
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Result("S0", pattern.DoubleSided, timing.TRAS)
	ac := r.ACminStats()
	ts := r.TimeStats()
	if !ac.Flipped() || !ts.Flipped() {
		t.Fatal("RowHammer on S0 must flip")
	}
	if ac.Min > ac.Mean {
		t.Errorf("min %g above mean %g", ac.Min, ac.Mean)
	}
	if ac.N != ac.Total {
		t.Errorf("every row should flip: %d/%d", ac.N, ac.Total)
	}
	if ts.Mean <= 0 {
		t.Errorf("mean time %g", ts.Mean)
	}
	frac, n := r.OneToZeroFraction()
	if n == 0 {
		t.Fatal("no flips recorded")
	}
	if frac < 0 || frac > 1 {
		t.Errorf("fraction %g out of range", frac)
	}
	keys := r.FlipKeys()
	if len(keys) == 0 || len(keys) > n {
		t.Errorf("flip key set size %d inconsistent with %d flips", len(keys), n)
	}
}

func TestFig4WellFormed(t *testing.T) {
	s := NewStudy(tinyStudyConfig(t))
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Only Mfr. S and Mfr. M modules are in the tiny study.
	if _, ok := data[chipdb.MfrS]; !ok {
		t.Fatal("missing Mfr. S panel")
	}
	if _, ok := data[chipdb.MfrH]; ok {
		t.Error("unexpected Mfr. H panel")
	}
	for mfr, series := range data {
		for k, pts := range series {
			if len(pts) != 2 {
				t.Errorf("%v/%v: %d points, want 2", mfr, k, len(pts))
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].AggOn <= pts[i-1].AggOn {
					t.Errorf("%v/%v: sweep not sorted", mfr, k)
				}
			}
		}
	}
	// At tAggON = tRAS, combined and double-sided are identical
	// patterns; their curve points must coincide exactly.
	sPanel := data[chipdb.MfrS]
	if c, d := sPanel[pattern.Combined][0], sPanel[pattern.DoubleSided][0]; c.TimeMeanMs != d.TimeMeanMs || c.ACminMean != d.ACminMean {
		t.Errorf("combined and double-sided differ at tRAS: %+v vs %+v", c, d)
	}
}

func TestFig5And6WellFormed(t *testing.T) {
	s := NewStudy(tinyStudyConfig(t))
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	f5, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for mfr, byDie := range f5 {
		for die, pts := range byDie {
			for _, pt := range pts {
				if pt.OneToZeroFrac < 0 || pt.OneToZeroFrac > 1 {
					t.Errorf("%v/%s: fraction %g out of range", mfr, die, pt.OneToZeroFrac)
				}
			}
		}
	}
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for mfr, byDie := range f6 {
		for die, curves := range byDie {
			if len(curves.VsSingle) != 2 || len(curves.VsDouble) != 2 {
				t.Errorf("%v/%s: wrong curve lengths", mfr, die)
			}
			// Overlap with double-sided at tRAS is exactly 1 (identical
			// patterns).
			if pt := curves.VsDouble[0]; pt.ConvFlips > 0 && pt.Overlap != 1.0 {
				t.Errorf("%v/%s: overlap with double at tRAS = %g, want 1", mfr, die, pt.Overlap)
			}
		}
	}
}

func TestTable2RequiresMarks(t *testing.T) {
	cfg := tinyStudyConfig(t)
	s := NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The tiny sweep lacks 70.2us, so Table2 must fail loudly.
	if _, err := s.Table2(); err == nil {
		t.Error("Table2 with incomplete sweep succeeded")
	}
}

func TestStatsSummarize(t *testing.T) {
	st := summarize(nil, 5)
	if st.Flipped() || st.Total != 5 {
		t.Errorf("empty summary: %+v", st)
	}
	st = summarize([]float64{2, 4, 6}, 3)
	if st.Mean != 4 || st.Min != 2 || st.N != 3 {
		t.Errorf("summary: %+v", st)
	}
	if st.Std < 1.9 || st.Std > 2.1 {
		t.Errorf("std = %g, want 2", st.Std)
	}
}

// TestStudyLeavesNoGoroutines: the worker pool must be fully drained
// when Run returns (including on cancellation).
func TestStudyLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewStudy(tinyStudyConfig(t))
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s2 := NewStudy(tinyStudyConfig(t))
	_ = s2.Run(ctx)
	// Allow the scheduler a moment to retire worker stacks.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
