//go:build arm64 && !purego

package core

import "unsafe"

// The arm64 variants: hand-unrolled 2x2-lane bodies shaped for NEON's
// 128-bit (2 x float64) registers — four independent per-cell chains
// with no cross-lane data flow, so the compiler can keep both FP
// divide pipes busy and every operation still rounds individually
// (the per-cell expression contains no a*b+c shape, so arm64's FMA
// contraction cannot fire inside a lane; see kernels.go for the
// contract). Callers guarantee n is a multiple of solveLanes, so
// there is no scalar tail.

func pickDamageKernels() (split, fused func(*damageKernArgs), level string) {
	return damageSplitNEON, damageFusedNEON, "neon"
}

// bankFastEnabled turns on the integer-stepping bulk fast-forward
// solver (bankbatch.go); purego builds keep the float reference.
const bankFastEnabled = true

func damageSplitNEON(k *damageKernArgs) {
	n := int(k.n)
	st, fi := unsafe.Slice(k.st, n), unsafe.Slice(k.fi, n)
	tot, ft := unsafe.Slice(k.tot, n), unsafe.Slice(k.ft, n)
	synS, synF := unsafe.Slice(k.synS, n), unsafe.Slice(k.synF, n)
	ws, th, tp := unsafe.Slice(k.ws, n), unsafe.Slice(k.th, n), unsafe.Slice(k.tp, n)
	boost, se, fe, weakSide, tf := k.boost, k.se, k.fe, k.weakSide, k.tf
	ini := k.init != 0
	for c := 0; c+3 < n; c += 4 {
		hs0, hs1, hs2, hs3 := boost*synS[c], boost*synS[c+1], boost*synS[c+2], boost*synS[c+3]
		hf0, hf1, hf2, hf3 := boost*synF[c], boost*synF[c+1], boost*synF[c+2], boost*synF[c+3]
		sf0, sf1, sf2, sf3 := weakSide*ws[c], weakSide*ws[c+1], weakSide*ws[c+2], weakSide*ws[c+3]
		th0, th1, th2, th3 := th[c], th[c+1], th[c+2], th[c+3]
		tp0, tp1, tp2, tp3 := tp[c], tp[c+1], tp[c+2], tp[c+3]
		st0 := tf * (hs0/th0 + se*sf0/tp0)
		st1 := tf * (hs1/th1 + se*sf1/tp1)
		st2 := tf * (hs2/th2 + se*sf2/tp2)
		st3 := tf * (hs3/th3 + se*sf3/tp3)
		st[c], st[c+1], st[c+2], st[c+3] = st0, st1, st2, st3
		fi0 := tf * (hf0/th0 + fe*sf0/tp0)
		fi1 := tf * (hf1/th1 + fe*sf1/tp1)
		fi2 := tf * (hf2/th2 + fe*sf2/tp2)
		fi3 := tf * (hf3/th3 + fe*sf3/tp3)
		fi[c], fi[c+1], fi[c+2], fi[c+3] = fi0, fi1, fi2, fi3
		if ini {
			tot[c], tot[c+1], tot[c+2], tot[c+3] = st0, st1, st2, st3
			ft[c], ft[c+1], ft[c+2], ft[c+3] = fi0, fi1, fi2, fi3
			continue
		}
		tot[c] += st0
		tot[c+1] += st1
		tot[c+2] += st2
		tot[c+3] += st3
		ft[c] += fi0
		ft[c+1] += fi1
		ft[c+2] += fi2
		ft[c+3] += fi3
	}
}

func damageFusedNEON(k *damageKernArgs) {
	n := int(k.n)
	st := unsafe.Slice(k.st, n)
	tot, ft := unsafe.Slice(k.tot, n), unsafe.Slice(k.ft, n)
	synS := unsafe.Slice(k.synS, n)
	ws, th, tp := unsafe.Slice(k.ws, n), unsafe.Slice(k.th, n), unsafe.Slice(k.tp, n)
	boost, se, weakSide, tf := k.boost, k.se, k.weakSide, k.tf
	ini := k.init != 0
	for c := 0; c+3 < n; c += 4 {
		hs0, hs1, hs2, hs3 := boost*synS[c], boost*synS[c+1], boost*synS[c+2], boost*synS[c+3]
		sf0, sf1, sf2, sf3 := weakSide*ws[c], weakSide*ws[c+1], weakSide*ws[c+2], weakSide*ws[c+3]
		st0 := tf * (hs0/th[c] + se*sf0/tp[c])
		st1 := tf * (hs1/th[c+1] + se*sf1/tp[c+1])
		st2 := tf * (hs2/th[c+2] + se*sf2/tp[c+2])
		st3 := tf * (hs3/th[c+3] + se*sf3/tp[c+3])
		st[c], st[c+1], st[c+2], st[c+3] = st0, st1, st2, st3
		if ini {
			tot[c], tot[c+1], tot[c+2], tot[c+3] = st0, st1, st2, st3
			ft[c], ft[c+1], ft[c+2], ft[c+3] = st0, st1, st2, st3
			continue
		}
		tot[c] += st0
		tot[c+1] += st1
		tot[c+2] += st2
		tot[c+3] += st3
		ft[c] += st0
		ft[c+1] += st1
		ft[c+2] += st2
		ft[c+3] += st3
	}
}
