package core

import (
	"fmt"
	"math"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// AnalyticEngine computes first-flip points in closed form from the
// device damage model, without executing individual commands. It matches
// BankEngine exactly (see the cross-validation test) while being orders
// of magnitude faster, which makes the paper's full sweep (14 modules x
// 3K rows x 14 tAggON points x 3 patterns x 3 repeats) tractable.
//
// The engine memoizes per-spec damage terms and per-row base cell
// populations and reuses all hot-path scratch buffers, so steady-state
// characterization (revisiting a row across run repeats, or any row
// served by a warm shared PopCache) performs no allocations. The caches
// make an engine NOT safe for concurrent use; give each goroutine its
// own engine (they can share one PopCache, which is concurrency-safe).
type AnalyticEngine struct {
	profile  device.Profile
	params   device.DisturbParams
	weakSide float64
	bank     int
	numRows  int
	rowBits  int

	// shared is the optional cross-engine base-population cache.
	shared *device.PopulationCache

	// Hot-path memoization and scratch state.
	termsSpec pattern.Spec
	termsOK   bool
	terms     []actTerms
	popRow    int
	pop       *device.RowPopulation
	cells     []device.WeakCell
	scratch   flipScratch
	batch     solveBatch
	view      device.SolveView
	bestIdx   []int
}

var _ Engine = (*AnalyticEngine)(nil)

// AnalyticConfig configures an AnalyticEngine.
type AnalyticConfig struct {
	Profile device.Profile
	Params  device.DisturbParams
	// Bank is the bank index (seeds the cell populations).
	Bank int
	// NumRows defaults to 65536, RowBytes to 1024.
	NumRows  int
	RowBytes int
	// PopCache optionally shares base cell populations across engines
	// that characterize the same die (it must match Profile, Params,
	// Bank and RowBytes). Without it the engine keeps a private
	// single-row cache, which is enough for run-repeat loops.
	PopCache *device.PopulationCache
}

// NewAnalyticEngine validates the configuration and builds the engine.
func NewAnalyticEngine(cfg AnalyticConfig) (*AnalyticEngine, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumRows == 0 {
		cfg.NumRows = 65536
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 1024
	}
	if cfg.PopCache != nil && !cfg.PopCache.Matches(cfg.Profile, cfg.Params, cfg.Bank, cfg.RowBytes*8) {
		return nil, fmt.Errorf("core: PopCache was built for a different die than this engine")
	}
	return &AnalyticEngine{
		profile:  cfg.Profile,
		params:   cfg.Params,
		weakSide: device.WeakSideCouplingOf(cfg.Profile, cfg.Params),
		bank:     cfg.Bank,
		numRows:  cfg.NumRows,
		rowBits:  cfg.RowBytes * 8,
		shared:   cfg.PopCache,
		popRow:   -1,
	}, nil
}

// actTerms is the per-activation damage decomposition for one pattern.
type actTerms struct {
	// boost is hs(t) for this activation.
	boost float64
	// side is which neighbour the victim is disturbed from.
	side device.Side
	// steadyExposure / firstExposure are the raw press exposures in
	// seconds under steady-state and first-iteration interleaving
	// conditions (side coupling is applied per cell).
	steadyExposure float64
	firstExposure  float64
	// steadySynergy / firstSynergy indicate whether the double-sided
	// hammer synergy applies.
	steadySynergy bool
	firstSynergy  bool
	// end is the time offset of this activation's precharge within the
	// iteration.
	end time.Duration
}

// flipScratch holds firstFlip's per-act damage buffers, hoisted out of
// the per-cell loop so the solver does not allocate per call.
type flipScratch struct {
	steady []float64
	first  []float64
}

func (s *flipScratch) resize(n int) {
	if cap(s.steady) < n {
		s.steady = make([]float64, n)
		s.first = make([]float64, n)
	}
	s.steady = s.steady[:n]
	s.first = s.first[:n]
}

// decompose computes the per-activation damage terms of a pattern into
// dst. The steady/first split mirrors BankEngine's state rules exactly:
// the very first activation of the strong aggressor sees no synergy (the
// other side has not activated yet) and no interleave penalty.
func (e *AnalyticEngine) decompose(dst []actTerms, spec pattern.Spec) []actTerms {
	acts := spec.Acts()
	multi := len(acts) > 1
	for i, a := range acts {
		side := device.SideStrong
		if a.RowOffset > 0 {
			side = device.SideWeak
		}
		first := i > 0 // only act 0 of iteration 1 lacks synergy/interleave
		dst = append(dst, actTerms{
			boost:          e.params.HammerBoost(a.OnTime),
			side:           side,
			steadyExposure: e.params.PressExposure(a.OnTime, multi),
			firstExposure:  e.params.PressExposure(a.OnTime, multi && first),
			steadySynergy:  multi,
			firstSynergy:   multi && first,
			end:            spec.ActEnd(i),
		})
	}
	return dst
}

// termsFor returns the memoized damage decomposition of spec. Specs are
// fixed across a whole (module, pattern, tAggON) cell, so in campaign
// loops this is computed once per cell instead of once per row.
func (e *AnalyticEngine) termsFor(spec pattern.Spec) []actTerms {
	if e.termsOK && spec == e.termsSpec {
		return e.terms
	}
	e.terms = e.decompose(e.terms[:0], spec)
	e.termsSpec = spec
	e.termsOK = true
	return e.terms
}

// cellsFor materializes the victim row's cell population for one run,
// reusing the cached base population (engine-private for the last row,
// or the shared PopCache) and the engine's cells buffer.
func (e *AnalyticEngine) cellsFor(victim int, runSeed int64) []device.WeakCell {
	if e.popRow != victim {
		if e.shared != nil {
			e.pop = e.shared.Get(victim)
		} else {
			e.pop = device.NewRowPopulation(e.profile, e.params, e.bank, victim, e.rowBits)
		}
		e.popRow = victim
	}
	e.cells = e.pop.AppendCells(e.cells[:0], runSeed)
	return e.cells
}

// cellFlip is a first-flip point for one cell.
type cellFlip struct {
	iter int64 // 1-based iteration of the flip
	act  int   // 0-based act index within the iteration
}

// firstFlip solves for the first (iteration, act) at which the cell's
// accumulated damage reaches 1, or ok=false if it never does. scr
// provides the per-act damage buffers (callers hoist it out of their
// cell loops).
func firstFlip(c *device.WeakCell, terms []actTerms, weakSide, tf float64, maxIters int64, scr *flipScratch) (cellFlip, bool) {
	if maxIters <= 0 {
		return cellFlip{}, false
	}
	// Per-act steady and first-iteration damages.
	var steadyTotal float64
	scr.resize(len(terms))
	steady := scr.steady
	first := scr.first
	for i := range terms {
		t := &terms[i]
		hs := t.boost
		hf := t.boost
		if t.steadySynergy {
			hs *= c.Syn
		}
		if t.firstSynergy {
			hf *= c.Syn
		}
		sideFactor := device.SideFactor(t.side, weakSide, c.WeakSide)
		steady[i] = tf * (hs/c.Th + t.steadyExposure*sideFactor/c.Tp)
		first[i] = tf * (hf/c.Th + t.firstExposure*sideFactor/c.Tp)
		steadyTotal += steady[i]
	}

	// Iteration 1.
	acc := 0.0
	for i := range first {
		acc += first[i]
		if acc >= 1 {
			return cellFlip{iter: 1, act: i}, true
		}
	}
	if steadyTotal <= 0 {
		return cellFlip{}, false
	}

	// Steady iterations 2..N.
	remaining := 1 - acc
	n := int64(math.Ceil(remaining / steadyTotal))
	if n < 1 {
		n = 1
	}
	iter := 1 + n
	if iter > maxIters {
		return cellFlip{}, false
	}
	// Locate the act within the flip iteration. Floating-point rounding
	// in the ceil above may leave the crossing one iteration later.
	base := acc + float64(n-1)*steadyTotal
	for {
		a := base
		for i := range steady {
			a += steady[i]
			if a >= 1 {
				return cellFlip{iter: iter, act: i}, true
			}
		}
		base = a
		iter++
		if iter > maxIters {
			return cellFlip{}, false
		}
	}
}

// solveBatch evaluates firstFlip over a whole row's eligible cells at
// once, in struct-of-arrays form: per-cell thresholds come in as a
// device.SolveView, per-(act, cell) dose terms and the per-cell
// iteration results live in contiguous slices laid out act-major. The
// damage phase is a branch-light rectangular loop nest the compiler can
// vectorize; the locate phase replays the scalar solver's control flow
// per cell, so every float operation happens in the same order as the
// scalar path and the results are bit-identical (pinned by the
// scalar-vs-batched cross-check test and the rendering goldens).
type solveBatch struct {
	// steady and first are the per-act damages, act-major:
	// steady[a*n+c] is act a's steady-state damage to cell c.
	steady []float64
	first  []float64
	// steadyTotal[c] is the damage one steady-state iteration deals to
	// cell c (the sum over acts, accumulated in act order).
	steadyTotal []float64
	// iter[c] is the 1-based flip iteration of cell c (0 = no flip
	// within maxIters); act[c] the 0-based act index within it.
	iter []int64
	act  []int32
}

func (b *solveBatch) resize(acts, n int) {
	if cap(b.steadyTotal) < n {
		b.steadyTotal = make([]float64, n)
		b.iter = make([]int64, n)
		b.act = make([]int32, n)
	}
	b.steadyTotal = b.steadyTotal[:n]
	b.iter = b.iter[:n]
	b.act = b.act[:n]
	if cap(b.steady) < acts*n {
		b.steady = make([]float64, acts*n)
		b.first = make([]float64, acts*n)
	}
	b.steady = b.steady[:acts*n]
	b.first = b.first[:acts*n]
}

// solve fills b.iter/b.act for every cell of the view. The arithmetic
// per cell is exactly firstFlip's, loop-interchanged: damages are
// computed act-major (the per-term synergy/side selects are uniform
// across cells, so the inner loops carry no data-dependent branches),
// then the flip point is located per cell.
func (b *solveBatch) solve(v *device.SolveView, terms []actTerms, weakSide, tf float64, maxIters int64) {
	n := v.Len()
	acts := len(terms)
	b.resize(acts, n)
	if n == 0 {
		return
	}
	if maxIters <= 0 {
		for c := range b.iter {
			b.iter[c] = 0
		}
		return
	}
	for c := range b.steadyTotal {
		b.steadyTotal[c] = 0
	}
	for i := range terms {
		t := &terms[i]
		st := b.steady[i*n : (i+1)*n]
		fi := b.first[i*n : (i+1)*n]
		steadySyn, firstSyn := t.steadySynergy, t.firstSynergy
		weak := t.side == device.SideWeak
		boost, se, fe := t.boost, t.steadyExposure, t.firstExposure
		for c := 0; c < n; c++ {
			hs, hf := boost, boost
			if steadySyn {
				hs *= v.Syn[c]
			}
			if firstSyn {
				hf *= v.Syn[c]
			}
			sideFactor := 1.0
			if weak {
				sideFactor = weakSide * v.WeakSide[c]
			}
			st[c] = tf * (hs/v.Th[c] + se*sideFactor/v.Tp[c])
			fi[c] = tf * (hf/v.Th[c] + fe*sideFactor/v.Tp[c])
			b.steadyTotal[c] += st[c]
		}
	}

	for c := 0; c < n; c++ {
		b.iter[c] = 0
		// Iteration 1.
		acc := 0.0
		flipped := false
		for i := 0; i < acts; i++ {
			acc += b.first[i*n+c]
			if acc >= 1 {
				b.iter[c], b.act[c] = 1, int32(i)
				flipped = true
				break
			}
		}
		if flipped {
			continue
		}
		total := b.steadyTotal[c]
		if total <= 0 {
			continue
		}
		// Steady iterations 2..N, with the same rounding-robust locate
		// loop as the scalar solver.
		remaining := 1 - acc
		k := int64(math.Ceil(remaining / total))
		if k < 1 {
			k = 1
		}
		iter := 1 + k
		if iter > maxIters {
			continue
		}
		base := acc + float64(k-1)*total
		for b.iter[c] == 0 {
			a := base
			for i := 0; i < acts; i++ {
				a += b.steady[i*n+c]
				if a >= 1 {
					b.iter[c], b.act[c] = iter, int32(i)
					break
				}
			}
			base = a
			iter++
			if b.iter[c] == 0 && iter > maxIters {
				break
			}
		}
	}
}

// viewFor returns the victim row's solver view for one (run, data
// pattern) realization. With a shared PopCache the view is cached on
// the row population, so every (pattern, tAggON) cell of a campaign
// that revisits the same (row, run) shares one noise application; a
// private engine rebuilds into its own scratch view instead (caching
// per-realization views for every row it ever visits would trade
// unbounded memory for nothing — private engines re-generate the
// population on row change anyway).
func (e *AnalyticEngine) viewFor(victim int, runSeed int64, data device.DataPattern) *device.SolveView {
	if e.popRow != victim {
		if e.shared != nil {
			e.pop = e.shared.Get(victim)
		} else {
			e.pop = device.NewRowPopulation(e.profile, e.params, e.bank, victim, e.rowBits)
		}
		e.popRow = victim
	}
	if e.shared != nil {
		return e.pop.SolveView(runSeed, data)
	}
	e.pop.FillSolveView(&e.view, runSeed, data)
	return &e.view
}

// CharacterizeRow implements Engine.
func (e *AnalyticEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	var res RowResult
	err := e.CharacterizeRowInto(victim, spec, opts, &res)
	return res, err
}

// CharacterizeRowInto is CharacterizeRow writing into a caller-owned
// result, reusing res.Flips' backing storage. Campaign loops recycle one
// RowResult so the whole steady-state hot path is allocation-free; the
// flips are only valid until the next call with the same res.
//
// It is a thin wrapper over the batched solver: the row's eligible
// cells are solved in one solveBatch pass and the winner (earliest
// (iteration, act), ties in cell order) is extracted afterwards — the
// output is bit-identical to solving cell by cell with firstFlip.
func (e *AnalyticEngine) CharacterizeRowInto(victim int, spec pattern.Spec, opts RunOpts, res *RowResult) error {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		*res = RowResult{}
		return err
	}
	*res = RowResult{Victim: victim, Spec: spec, NoBitflip: true, Flips: res.Flips[:0]}

	terms := e.termsFor(spec)
	tf := e.params.TempFactor(opts.TempC)
	maxIters := spec.MaxIterations(opts.Budget)
	view := e.viewFor(victim, opts.Run, opts.Data)

	e.batch.solve(view, terms, e.weakSide, tf, maxIters)

	bestIter := int64(math.MaxInt64)
	bestAct := 0
	bestIdx := e.bestIdx[:0]
	for i, iter := range e.batch.iter {
		if iter == 0 {
			continue
		}
		act := int(e.batch.act[i])
		switch {
		case iter < bestIter || (iter == bestIter && act < bestAct):
			bestIter, bestAct = iter, act
			bestIdx = append(bestIdx[:0], i)
		case iter == bestIter && act == bestAct:
			bestIdx = append(bestIdx, i)
		}
	}
	e.bestIdx = bestIdx
	if len(bestIdx) == 0 {
		return nil
	}

	timeToFirst := time.Duration(bestIter-1)*spec.IterationTime() + terms[bestAct].end
	if timeToFirst > opts.Budget {
		return nil
	}
	res.NoBitflip = false
	res.Iterations = bestIter
	res.ACmin = (bestIter-1)*int64(spec.ActsPerIteration()) + int64(bestAct) + 1
	res.TimeToFirst = timeToFirst
	for _, i := range bestIdx {
		res.Flips = append(res.Flips, device.Bitflip{
			Row:  victim,
			Bit:  int(view.Bit[i]),
			Dir:  view.Dir[i],
			Mech: view.Mech[i],
		})
	}
	return nil
}

// characterizeRowIntoScalar is the pre-batching reference
// implementation: cell-by-cell firstFlip over the materialized
// []WeakCell population. It is retained as the oracle for the
// scalar-vs-batched cross-check test, which pins the batched kernel to
// it bit for bit.
func (e *AnalyticEngine) characterizeRowIntoScalar(victim int, spec pattern.Spec, opts RunOpts, res *RowResult) error {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		*res = RowResult{}
		return err
	}
	*res = RowResult{Victim: victim, Spec: spec, NoBitflip: true, Flips: res.Flips[:0]}

	terms := e.termsFor(spec)
	tf := e.params.TempFactor(opts.TempC)
	maxIters := spec.MaxIterations(opts.Budget)
	cells := e.cellsFor(victim, opts.Run)

	bestIter := int64(math.MaxInt64)
	bestAct := 0
	bestIdx := e.bestIdx[:0]
	for i := range cells {
		c := &cells[i]
		// A cell only produces an observable flip if the victim data
		// pattern stores the value its mechanism attacks.
		if opts.Data.VictimBitAt(c.Bit) != c.Dir.From() {
			continue
		}
		fp, ok := firstFlip(c, terms, e.weakSide, tf, maxIters, &e.scratch)
		if !ok {
			continue
		}
		switch {
		case fp.iter < bestIter || (fp.iter == bestIter && fp.act < bestAct):
			bestIter, bestAct = fp.iter, fp.act
			bestIdx = append(bestIdx[:0], i)
		case fp.iter == bestIter && fp.act == bestAct:
			bestIdx = append(bestIdx, i)
		}
	}
	e.bestIdx = bestIdx
	if len(bestIdx) == 0 {
		return nil
	}

	timeToFirst := time.Duration(bestIter-1)*spec.IterationTime() + terms[bestAct].end
	if timeToFirst > opts.Budget {
		return nil
	}
	res.NoBitflip = false
	res.Iterations = bestIter
	res.ACmin = (bestIter-1)*int64(spec.ActsPerIteration()) + int64(bestAct) + 1
	res.TimeToFirst = timeToFirst
	for _, i := range bestIdx {
		c := &cells[i]
		res.Flips = append(res.Flips, device.Bitflip{
			Row:  victim,
			Bit:  c.Bit,
			Dir:  c.Dir,
			Mech: c.Mech,
		})
	}
	return nil
}

// NumRows returns the engine's bank row count.
func (e *AnalyticEngine) NumRows() int { return e.numRows }
