package core

import (
	"math"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// AnalyticEngine computes first-flip points in closed form from the
// device damage model, without executing individual commands. It matches
// BankEngine exactly (see the cross-validation test) while being orders
// of magnitude faster, which makes the paper's full sweep (14 modules x
// 3K rows x 14 tAggON points x 3 patterns x 3 repeats) tractable.
type AnalyticEngine struct {
	profile  device.Profile
	params   device.DisturbParams
	weakSide float64
	bank     int
	numRows  int
	rowBits  int
}

var _ Engine = (*AnalyticEngine)(nil)

// AnalyticConfig configures an AnalyticEngine.
type AnalyticConfig struct {
	Profile device.Profile
	Params  device.DisturbParams
	// Bank is the bank index (seeds the cell populations).
	Bank int
	// NumRows defaults to 65536, RowBytes to 1024.
	NumRows  int
	RowBytes int
}

// NewAnalyticEngine validates the configuration and builds the engine.
func NewAnalyticEngine(cfg AnalyticConfig) (*AnalyticEngine, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumRows == 0 {
		cfg.NumRows = 65536
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 1024
	}
	return &AnalyticEngine{
		profile:  cfg.Profile,
		params:   cfg.Params,
		weakSide: device.WeakSideCouplingOf(cfg.Profile, cfg.Params),
		bank:     cfg.Bank,
		numRows:  cfg.NumRows,
		rowBits:  cfg.RowBytes * 8,
	}, nil
}

// actTerms is the per-activation damage decomposition for one pattern.
type actTerms struct {
	// boost is hs(t) for this activation.
	boost float64
	// side is which neighbour the victim is disturbed from.
	side device.Side
	// steadyExposure / firstExposure are the raw press exposures in
	// seconds under steady-state and first-iteration interleaving
	// conditions (side coupling is applied per cell).
	steadyExposure float64
	firstExposure  float64
	// steadySynergy / firstSynergy indicate whether the double-sided
	// hammer synergy applies.
	steadySynergy bool
	firstSynergy  bool
	// end is the time offset of this activation's precharge within the
	// iteration.
	end time.Duration
}

// decompose precomputes the per-activation damage terms of a pattern.
// The steady/first split mirrors BankEngine's state rules exactly: the
// very first activation of the strong aggressor sees no synergy (the
// other side has not activated yet) and no interleave penalty.
func (e *AnalyticEngine) decompose(spec pattern.Spec) []actTerms {
	acts := spec.Acts()
	multi := len(acts) > 1
	terms := make([]actTerms, len(acts))
	for i, a := range acts {
		side := device.SideStrong
		if a.RowOffset > 0 {
			side = device.SideWeak
		}
		first := i > 0 // only act 0 of iteration 1 lacks synergy/interleave
		terms[i] = actTerms{
			boost:          e.params.HammerBoost(a.OnTime),
			side:           side,
			steadyExposure: e.params.PressExposure(a.OnTime, multi),
			firstExposure:  e.params.PressExposure(a.OnTime, multi && first),
			steadySynergy:  multi,
			firstSynergy:   multi && first,
			end:            spec.ActEnd(i),
		}
	}
	return terms
}

// cellFlip is a first-flip point for one cell.
type cellFlip struct {
	iter int64 // 1-based iteration of the flip
	act  int   // 0-based act index within the iteration
}

// firstFlip solves for the first (iteration, act) at which the cell's
// accumulated damage reaches 1, or ok=false if it never does.
func firstFlip(c *device.WeakCell, terms []actTerms, weakSide, tf float64, maxIters int64) (cellFlip, bool) {
	if maxIters <= 0 {
		return cellFlip{}, false
	}
	// Per-act steady and first-iteration damages.
	var steadyTotal float64
	steady := make([]float64, len(terms))
	first := make([]float64, len(terms))
	for i, t := range terms {
		hs := t.boost
		hf := t.boost
		if t.steadySynergy {
			hs *= c.Syn
		}
		if t.firstSynergy {
			hf *= c.Syn
		}
		sideFactor := device.SideFactor(t.side, weakSide, c.WeakSide)
		steady[i] = tf * (hs/c.Th + t.steadyExposure*sideFactor/c.Tp)
		first[i] = tf * (hf/c.Th + t.firstExposure*sideFactor/c.Tp)
		steadyTotal += steady[i]
	}

	// Iteration 1.
	acc := 0.0
	for i := range first {
		acc += first[i]
		if acc >= 1 {
			return cellFlip{iter: 1, act: i}, true
		}
	}
	if steadyTotal <= 0 {
		return cellFlip{}, false
	}

	// Steady iterations 2..N.
	remaining := 1 - acc
	n := int64(math.Ceil(remaining / steadyTotal))
	if n < 1 {
		n = 1
	}
	iter := 1 + n
	if iter > maxIters {
		return cellFlip{}, false
	}
	// Locate the act within the flip iteration. Floating-point rounding
	// in the ceil above may leave the crossing one iteration later.
	base := acc + float64(n-1)*steadyTotal
	for {
		a := base
		for i := range steady {
			a += steady[i]
			if a >= 1 {
				return cellFlip{iter: iter, act: i}, true
			}
		}
		base = a
		iter++
		if iter > maxIters {
			return cellFlip{}, false
		}
	}
}

// CharacterizeRow implements Engine.
func (e *AnalyticEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		return RowResult{}, err
	}
	res := RowResult{Victim: victim, Spec: spec, NoBitflip: true}

	terms := e.decompose(spec)
	tf := e.params.TempFactor(opts.TempC)
	maxIters := spec.MaxIterations(opts.Budget)
	cells := device.GenerateRowCells(e.profile, e.params, e.bank, victim, e.rowBits, opts.Run)

	bestIter := int64(math.MaxInt64)
	bestAct := 0
	var bestCells []*device.WeakCell
	for _, c := range cells {
		// A cell only produces an observable flip if the victim data
		// pattern stores the value its mechanism attacks.
		if opts.Data.VictimBitAt(c.Bit) != c.Dir.From() {
			continue
		}
		fp, ok := firstFlip(c, terms, e.weakSide, tf, maxIters)
		if !ok {
			continue
		}
		switch {
		case fp.iter < bestIter || (fp.iter == bestIter && fp.act < bestAct):
			bestIter, bestAct = fp.iter, fp.act
			bestCells = bestCells[:0]
			bestCells = append(bestCells, c)
		case fp.iter == bestIter && fp.act == bestAct:
			bestCells = append(bestCells, c)
		}
	}
	if len(bestCells) == 0 {
		return res, nil
	}

	res.NoBitflip = false
	res.Iterations = bestIter
	res.ACmin = (bestIter-1)*int64(spec.ActsPerIteration()) + int64(bestAct) + 1
	res.TimeToFirst = time.Duration(bestIter-1)*spec.IterationTime() + terms[bestAct].end
	if res.TimeToFirst > opts.Budget {
		return RowResult{Victim: victim, Spec: spec, NoBitflip: true}, nil
	}
	for _, c := range bestCells {
		res.Flips = append(res.Flips, device.Bitflip{
			Row:  victim,
			Bit:  c.Bit,
			Dir:  c.Dir,
			Mech: c.Mech,
		})
	}
	return res, nil
}

// NumRows returns the engine's bank row count.
func (e *AnalyticEngine) NumRows() int { return e.numRows }
