package core

import (
	"fmt"
	"math"
	"time"

	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
)

// AnalyticEngine computes first-flip points in closed form from the
// device damage model, without executing individual commands. It matches
// BankEngine exactly (see the cross-validation test) while being orders
// of magnitude faster, which makes the paper's full sweep (14 modules x
// 3K rows x 14 tAggON points x 3 patterns x 3 repeats) tractable.
//
// The engine memoizes per-spec damage terms and per-row base cell
// populations and reuses all hot-path scratch buffers, so steady-state
// characterization (revisiting a row across run repeats, or any row
// served by a warm shared PopCache) performs no allocations. The caches
// make an engine NOT safe for concurrent use; give each goroutine its
// own engine (they can share one PopCache, which is concurrency-safe).
type AnalyticEngine struct {
	profile  device.Profile
	params   device.DisturbParams
	weakSide float64
	bank     int
	numRows  int
	rowBits  int

	// shared is the optional cross-engine base-population cache.
	shared *device.PopulationCache

	// Hot-path memoization and scratch state.
	termsSpec   pattern.Spec
	termsOK     bool
	terms       []actTerms
	iterTime    time.Duration
	actsPerIter int
	maxIters    int64
	miBudget    time.Duration
	miOK        bool
	tf          float64
	tfTemp      float64
	tfOK        bool
	popRow      int
	pop         *device.RowPopulation
	cells       []device.WeakCell
	scratch     flipScratch
	batch       solveBatch
	view        device.SolveView
	bestIdx     []int
}

var _ Engine = (*AnalyticEngine)(nil)

// AnalyticConfig configures an AnalyticEngine.
type AnalyticConfig struct {
	Profile device.Profile
	Params  device.DisturbParams
	// Bank is the bank index (seeds the cell populations).
	Bank int
	// NumRows defaults to 65536, RowBytes to 1024.
	NumRows  int
	RowBytes int
	// PopCache optionally shares base cell populations across engines
	// that characterize the same die (it must match Profile, Params,
	// Bank and RowBytes). Without it the engine keeps a private
	// single-row cache, which is enough for run-repeat loops.
	PopCache *device.PopulationCache
}

// NewAnalyticEngine validates the configuration and builds the engine.
func NewAnalyticEngine(cfg AnalyticConfig) (*AnalyticEngine, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumRows == 0 {
		cfg.NumRows = 65536
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 1024
	}
	if cfg.PopCache != nil && !cfg.PopCache.Matches(cfg.Profile, cfg.Params, cfg.Bank, cfg.RowBytes*8) {
		return nil, fmt.Errorf("core: PopCache was built for a different die than this engine")
	}
	return &AnalyticEngine{
		profile:  cfg.Profile,
		params:   cfg.Params,
		weakSide: device.WeakSideCouplingOf(cfg.Profile, cfg.Params),
		bank:     cfg.Bank,
		numRows:  cfg.NumRows,
		rowBits:  cfg.RowBytes * 8,
		shared:   cfg.PopCache,
		popRow:   -1,
	}, nil
}

// actTerms is the per-activation damage decomposition for one pattern.
type actTerms struct {
	// boost is hs(t) for this activation.
	boost float64
	// side is which neighbour the victim is disturbed from.
	side device.Side
	// steadyExposure / firstExposure are the raw press exposures in
	// seconds under steady-state and first-iteration interleaving
	// conditions (side coupling is applied per cell).
	steadyExposure float64
	firstExposure  float64
	// steadySynergy / firstSynergy indicate whether the double-sided
	// hammer synergy applies.
	steadySynergy bool
	firstSynergy  bool
	// end is the time offset of this activation's precharge within the
	// iteration.
	end time.Duration
}

// flipScratch holds firstFlip's per-act damage buffers, hoisted out of
// the per-cell loop so the solver does not allocate per call.
type flipScratch struct {
	steady []float64
	first  []float64
}

func (s *flipScratch) resize(n int) {
	if cap(s.steady) < n {
		s.steady = make([]float64, n)
		s.first = make([]float64, n)
	}
	s.steady = s.steady[:n]
	s.first = s.first[:n]
}

// decompose computes the per-activation damage terms of a pattern into
// dst. The steady/first split mirrors BankEngine's state rules exactly:
// the very first activation of the strong aggressor sees no synergy (the
// other side has not activated yet) and no interleave penalty.
func (e *AnalyticEngine) decompose(dst []actTerms, spec pattern.Spec) []actTerms {
	acts := spec.Acts()
	multi := len(acts) > 1
	for i, a := range acts {
		side := device.SideStrong
		if a.RowOffset > 0 {
			side = device.SideWeak
		}
		first := i > 0 // only act 0 of iteration 1 lacks synergy/interleave
		dst = append(dst, actTerms{
			boost:          e.params.HammerBoost(a.OnTime),
			side:           side,
			steadyExposure: e.params.PressExposure(a.OnTime, multi),
			firstExposure:  e.params.PressExposure(a.OnTime, multi && first),
			steadySynergy:  multi,
			firstSynergy:   multi && first,
			end:            spec.ActEnd(i),
		})
	}
	return dst
}

// termsFor returns the memoized damage decomposition of spec. Specs are
// fixed across a whole (module, pattern, tAggON) cell, so in campaign
// loops this is computed once per cell instead of once per row. The
// spec-derived schedule constants (iteration time, acts per iteration)
// are memoized alongside, and the budget-derived iteration cap is
// invalidated here so maxItersFor can key on the budget alone.
func (e *AnalyticEngine) termsFor(spec *pattern.Spec) []actTerms {
	if e.termsOK && spec.Eq(&e.termsSpec) {
		return e.terms
	}
	e.terms = e.decompose(e.terms[:0], *spec)
	e.termsSpec = *spec
	e.termsOK = true
	e.iterTime = spec.IterationTime()
	e.actsPerIter = spec.ActsPerIteration()
	e.miOK = false
	return e.terms
}

// maxItersFor memoizes MaxIterations for the memoized spec (it must be
// called after termsFor, whose memo key it reuses).
func (e *AnalyticEngine) maxItersFor(budget time.Duration) int64 {
	if !e.miOK || budget != e.miBudget {
		e.maxIters = e.termsSpec.MaxIterations(budget)
		e.miBudget = budget
		e.miOK = true
	}
	return e.maxIters
}

// tempFactorFor memoizes params.TempFactor (an exp call) by setpoint;
// campaigns run whole sweeps at one temperature.
func (e *AnalyticEngine) tempFactorFor(tempC float64) float64 {
	if !e.tfOK || tempC != e.tfTemp {
		e.tf = e.params.TempFactor(tempC)
		e.tfTemp = tempC
		e.tfOK = true
	}
	return e.tf
}

// cellsFor materializes the victim row's cell population for one run,
// reusing the cached base population (engine-private for the last row,
// or the shared PopCache) and the engine's cells buffer.
func (e *AnalyticEngine) cellsFor(victim int, runSeed int64) []device.WeakCell {
	if e.popRow != victim {
		if e.shared != nil {
			e.pop = e.shared.Get(victim)
		} else {
			e.pop = device.NewRowPopulation(e.profile, e.params, e.bank, victim, e.rowBits)
		}
		e.popRow = victim
	}
	e.cells = e.pop.AppendCells(e.cells[:0], runSeed)
	return e.cells
}

// cellFlip is a first-flip point for one cell.
type cellFlip struct {
	iter int64 // 1-based iteration of the flip
	act  int   // 0-based act index within the iteration
}

// firstFlip solves for the first (iteration, act) at which the cell's
// accumulated damage reaches 1, or ok=false if it never does. scr
// provides the per-act damage buffers (callers hoist it out of their
// cell loops).
func firstFlip(c *device.WeakCell, terms []actTerms, weakSide, tf float64, maxIters int64, scr *flipScratch) (cellFlip, bool) {
	if maxIters <= 0 {
		return cellFlip{}, false
	}
	// Per-act steady and first-iteration damages.
	var steadyTotal float64
	scr.resize(len(terms))
	steady := scr.steady
	first := scr.first
	for i := range terms {
		t := &terms[i]
		hs := t.boost
		hf := t.boost
		if t.steadySynergy {
			hs *= c.Syn
		}
		if t.firstSynergy {
			hf *= c.Syn
		}
		sideFactor := device.SideFactor(t.side, weakSide, c.WeakSide)
		steady[i] = tf * (hs/c.Th + t.steadyExposure*sideFactor/c.Tp)
		first[i] = tf * (hf/c.Th + t.firstExposure*sideFactor/c.Tp)
		steadyTotal += steady[i]
	}

	// Iteration 1.
	acc := 0.0
	for i := range first {
		acc += first[i]
		if acc >= 1 {
			return cellFlip{iter: 1, act: i}, true
		}
	}
	if steadyTotal <= 0 {
		return cellFlip{}, false
	}

	// Steady iterations 2..N.
	remaining := 1 - acc
	n := int64(math.Ceil(remaining / steadyTotal))
	if n < 1 {
		n = 1
	}
	iter := 1 + n
	if iter > maxIters {
		return cellFlip{}, false
	}
	// Locate the act within the flip iteration. Floating-point rounding
	// in the ceil above may leave the crossing one iteration later.
	base := acc + float64(n-1)*steadyTotal
	for {
		a := base
		for i := range steady {
			a += steady[i]
			if a >= 1 {
				return cellFlip{iter: iter, act: i}, true
			}
		}
		base = a
		iter++
		if iter > maxIters {
			return cellFlip{}, false
		}
	}
}

// solveBatch evaluates firstFlip over a whole row's eligible cells at
// once, in struct-of-arrays form: per-cell thresholds come in as a
// device.SolveView, per-(act, cell) dose terms and the per-cell
// iteration results live in contiguous slices laid out act-major with
// a lane-padded stride. The damage phase runs the dispatched vector
// kernels (kernels.go); the locate phase replays the scalar solver's
// control flow per cell, so every float operation happens in the same
// order as the scalar path and the results are bit-identical (pinned
// by the scalar-vs-batched cross-check test, the kernel parity fuzzer
// and the rendering goldens).
type solveBatch struct {
	// steady and first are the per-act damages, act-major with lane
	// stride np: steady[a*np+c] is act a's steady-state damage to cell
	// c. Acts whose first-iteration damage is bit-identical to the
	// steady one run the fused kernel and leave their first row
	// unwritten; fused[a] tells readers to use the steady row instead.
	steady []float64
	first  []float64
	fused  []bool
	// steadyTotal[c] / firstTotal[c] are the damage one steady-state /
	// first iteration deals to cell c (the sums over acts, accumulated
	// in act order — bit-identical to the scalar walk's accumulator).
	steadyTotal []float64
	firstTotal  []float64
	// ones stands in for the synergy / side-coupling columns of acts
	// where those factors do not apply: x*1.0 is exact for every x, so
	// the branch-free kernels match the branching scalar oracle.
	ones []float64
	// iter[c] is the 1-based flip iteration of cell c and act[c] the
	// 0-based act index within it. 0 means no flip at or before the
	// running-best iteration: the batch exists to find the earliest
	// flip, so cells that provably cannot win are dropped without a
	// locate walk and keep iter 0.
	iter []int64
	act  []int32
	// np is the lane-padded cell count (the stride of steady/first).
	np int

	// kargs is the reused kernel argument block (see damageKernArgs);
	// keeping it on the batch keeps the indirect kernel calls
	// allocation-free.
	kargs damageKernArgs

	// Winner fold: the earliest (iteration, act) across the row and
	// the view indices sharing it, in view order. lim is the inclusive
	// iteration horizon: min(maxIters, bestIter).
	bestIter int64
	bestAct  int32
	bestIdx  []int
	lim      int64
}

func (b *solveBatch) resize(acts, n int) {
	np := (n + solveLanes - 1) &^ (solveLanes - 1)
	if np == b.np && len(b.iter) == n && len(b.fused) == acts {
		return // steady state: every slice already has exactly this shape
	}
	b.np = np
	// Capacity checks are deliberately one per slice: the columns are
	// sized by two different extents (np per cell, acts*np per plane),
	// and a joint check keyed on one slice would quietly over-reslice
	// a sibling whose capacity drifted smaller.
	if cap(b.steadyTotal) < np {
		b.steadyTotal = make([]float64, np)
	}
	if cap(b.firstTotal) < np {
		b.firstTotal = make([]float64, np)
	}
	if cap(b.ones) < np {
		ones := make([]float64, np)
		for i := range ones {
			ones[i] = 1
		}
		b.ones = ones
	}
	b.steadyTotal = b.steadyTotal[:np]
	b.firstTotal = b.firstTotal[:np]
	b.ones = b.ones[:np]
	if cap(b.iter) < n {
		b.iter = make([]int64, n)
	}
	if cap(b.act) < n {
		b.act = make([]int32, n)
	}
	b.iter, b.act = b.iter[:n], b.act[:n]
	if cap(b.fused) < acts {
		b.fused = make([]bool, acts)
	}
	b.fused = b.fused[:acts]
	// The damage planes are not pre-zeroed: the kernels rewrite every
	// lane of every act row each solve (including the pad lanes), and
	// fused acts' first rows are never read — locate redirects them to
	// the steady row — so a shrink-then-grow cycle cannot surface a
	// previous batch's damages through lane-padded reads.
	if cap(b.steady) < acts*np {
		b.steady = make([]float64, acts*np)
	}
	if cap(b.first) < acts*np {
		b.first = make([]float64, acts*np)
	}
	b.steady = b.steady[:acts*np]
	b.first = b.first[:acts*np]
}

// solve fills b.iter/b.act and the winner fold for every cell of the
// view. The arithmetic per cell is exactly firstFlip's,
// loop-interchanged: damages are computed act-major by the dispatched
// kernels (the per-term synergy/side selects are uniform across cells,
// folded into exact ones-vector multiplies), then the flip point is
// located per cell.
func (b *solveBatch) solve(v *device.SolveView, terms []actTerms, weakSide, tf float64, maxIters int64) {
	n := v.Len()
	acts := len(terms)
	b.resize(acts, n)
	b.bestIter, b.bestAct = math.MaxInt64, math.MaxInt32
	b.bestIdx = b.bestIdx[:0]
	b.lim = maxIters
	if n == 0 || maxIters <= 0 || acts == 0 {
		for c := range b.iter {
			b.iter[c] = 0
		}
		return
	}
	np := b.np

	k := &b.kargs
	k.tot, k.ft = &b.steadyTotal[0], &b.firstTotal[0]
	k.th, k.tp = &v.Th[0], &v.Tp[0]
	k.tf = tf
	k.n = int64(np)
	for i := range terms {
		t := &terms[i]
		// Act 0 stores the totals rather than accumulating into them,
		// so they never need pre-zeroing (see damageKernArgs.init).
		if i == 0 {
			k.init = 1
		} else {
			k.init = 0
		}
		k.st = &b.steady[i*np]
		k.boost, k.se = t.boost, t.steadyExposure
		if t.side == device.SideWeak {
			k.ws, k.weakSide = &v.WeakSide[0], weakSide
		} else {
			k.ws, k.weakSide = &b.ones[0], 1
		}
		if t.steadySynergy {
			k.synS = &v.Syn[0]
		} else {
			k.synS = &b.ones[0]
		}
		// An act whose first-iteration damage is defined by the same
		// synergy flag and exposure as its steady-state damage (every
		// act but the warm-up first of a multi-act pattern) produces
		// bit-identical fi and st; the fused kernel computes them once.
		fused := t.firstSynergy == t.steadySynergy && t.firstExposure == t.steadyExposure
		b.fused[i] = fused
		if fused {
			damageFused(k)
		} else {
			k.fi = &b.first[i*np]
			k.fe = t.firstExposure
			if t.firstSynergy {
				k.synF = &v.Syn[0]
			} else {
				k.synF = &b.ones[0]
			}
			damageSplit(k)
		}
	}
	b.locate(n, acts)
}

// locate replays the scalar solver's per-cell control flow over the
// kernel-computed damages, folding winner extraction in. Every float
// operation a cell performs happens in firstFlip's order; the only
// divergences are pure skips: a cell whose iteration-1 total stayed
// below 1 skips the act walk (damages are non-negative, so prefix
// sums are monotone and cannot cross if the full sum did not), and a
// cell whose closed-form jump lands past the running-best iteration
// cannot win and is dropped without its locate walk.
func (b *solveBatch) locate(n, acts int) {
	np := b.np
	steady, first := b.steady, b.first
	for c := 0; c < n; c++ {
		b.iter[c] = 0 // overwritten by note when the cell flips in time
		acc := b.firstTotal[c]
		if !(acc < 1) {
			// Iteration 1 crossed (or a damage is NaN): replay the
			// exact walk to find the act.
			a := 0.0
			crossed := int32(-1)
			for i := 0; i < acts; i++ {
				row := first
				if b.fused[i] {
					row = steady
				}
				a += row[i*np+c]
				if a >= 1 {
					crossed = int32(i)
					break
				}
			}
			if crossed >= 0 {
				b.note(c, 1, crossed)
				continue
			}
			// Reachable only with NaN damages; keep the scalar flow.
			acc = a
		}
		total := b.steadyTotal[c]
		if total <= 0 {
			continue
		}
		remaining := 1 - acc
		// Prefilter: the cell's jump lands past the running-best
		// iteration — so it cannot win and keeps iter 0 — exactly when
		// remaining/total > lim-1, i.e. remaining > (lim-1)*total. One
		// multiply decides that for almost every losing cell, replacing
		// the divide+ceil+convert chain below. The float product p
		// carries a rounding (and float64(lim-1) another, when lim-1
		// exceeds 2^53), so only a margin comparison is conclusive:
		// p*skipMargin >= the exact product whenever p is normal.
		// Borderline cells, subnormal/zero/overflowed/NaN products and
		// lim == 1 all fall through to the exact sequence.
		const skipMargin = 1 + 0x1p-50 // > 1 + 4 ulps, exactly representable
		if p := float64(b.lim-1) * total; p > 0x1p-1000 && remaining > p*skipMargin {
			continue
		}
		// Steady iterations 2..N: closed-form jump, then the same
		// rounding-robust locate loop as the scalar solver.
		k := int64(math.Ceil(remaining / total))
		if k < 1 {
			k = 1
		}
		iter := 1 + k
		if iter > b.lim {
			continue
		}
		base := acc + float64(k-1)*total
		for {
			a := base
			crossed := int32(-1)
			for i := 0; i < acts; i++ {
				a += steady[i*np+c]
				if a >= 1 {
					crossed = int32(i)
					break
				}
			}
			if crossed >= 0 {
				b.note(c, iter, crossed)
				break
			}
			base = a
			iter++
			if iter > b.lim {
				break
			}
		}
	}
}

// note records cell c's flip point and folds it into the winner state.
// Cells arrive in view order, so bestIdx stays view-ordered; tightening
// lim to the new best iteration keeps later ties reachable (the locate
// horizon is inclusive) while letting strictly later flips skip out.
func (b *solveBatch) note(c int, iter int64, act int32) {
	b.iter[c], b.act[c] = iter, act
	switch {
	case iter < b.bestIter || (iter == b.bestIter && act < b.bestAct):
		b.bestIter, b.bestAct = iter, act
		b.bestIdx = append(b.bestIdx[:0], c)
		b.lim = iter
	case iter == b.bestIter && act == b.bestAct:
		b.bestIdx = append(b.bestIdx, c)
	}
}

// viewFor returns the victim row's solver view for one (run, data
// pattern) realization. With a shared PopCache the view is cached on
// the row population, so every (pattern, tAggON) cell of a campaign
// that revisits the same (row, run) shares one noise application; a
// private engine rebuilds into its own scratch view instead (caching
// per-realization views for every row it ever visits would trade
// unbounded memory for nothing — private engines re-generate the
// population on row change anyway).
func (e *AnalyticEngine) viewFor(victim int, runSeed int64, data device.DataPattern) *device.SolveView {
	if e.popRow != victim {
		if e.shared != nil {
			e.pop = e.shared.Get(victim)
		} else {
			e.pop = device.NewRowPopulation(e.profile, e.params, e.bank, victim, e.rowBits)
		}
		e.popRow = victim
	}
	if e.shared != nil {
		return e.pop.SolveView(runSeed, data)
	}
	e.pop.FillSolveView(&e.view, runSeed, data)
	return &e.view
}

// CharacterizeRow implements Engine.
func (e *AnalyticEngine) CharacterizeRow(victim int, spec pattern.Spec, opts RunOpts) (RowResult, error) {
	var res RowResult
	err := e.CharacterizeRowInto(victim, spec, opts, &res)
	return res, err
}

// CharacterizeRowInto is CharacterizeRow writing into a caller-owned
// result, reusing res.Flips' backing storage. Campaign loops recycle one
// RowResult so the whole steady-state hot path is allocation-free; the
// flips are only valid until the next call with the same res.
//
// It is a thin wrapper over the batched solver: the row's eligible
// cells are solved in one solveBatch pass and the winner (earliest
// (iteration, act), ties in cell order) is extracted afterwards — the
// output is bit-identical to solving cell by cell with firstFlip.
func (e *AnalyticEngine) CharacterizeRowInto(victim int, spec pattern.Spec, opts RunOpts, res *RowResult) error {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		*res = RowResult{}
		return err
	}
	// Field-wise reset (not a struct literal): the struct copy showed
	// up in the solve hot path, and Flips' backing storage must be
	// kept anyway. The Spec copy is guarded for the same reason —
	// campaign loops recycle one result across a fixed spec.
	res.Victim = victim
	if !spec.Eq(&res.Spec) {
		res.Spec = spec
	}
	res.NoBitflip = true
	res.Iterations = 0
	res.ACmin = 0
	res.TimeToFirst = 0
	res.Flips = res.Flips[:0]

	terms := e.termsFor(&spec)
	tf := e.tempFactorFor(opts.TempC)
	maxIters := e.maxItersFor(opts.Budget)
	view := e.viewFor(victim, opts.Run, opts.Data)

	e.batch.solve(view, terms, e.weakSide, tf, maxIters)
	if len(e.batch.bestIdx) == 0 {
		return nil
	}
	bestIter, bestAct := e.batch.bestIter, int(e.batch.bestAct)

	timeToFirst := time.Duration(bestIter-1)*e.iterTime + terms[bestAct].end
	if timeToFirst > opts.Budget {
		return nil
	}
	res.NoBitflip = false
	res.Iterations = bestIter
	res.ACmin = (bestIter-1)*int64(e.actsPerIter) + int64(bestAct) + 1
	res.TimeToFirst = timeToFirst
	for _, i := range e.batch.bestIdx {
		res.Flips = append(res.Flips, device.Bitflip{
			Row:  victim,
			Bit:  int(view.Bit[i]),
			Dir:  view.Dir[i],
			Mech: view.Mech[i],
		})
	}
	return nil
}

// characterizeRowIntoScalar is the pre-batching reference
// implementation: cell-by-cell firstFlip over the materialized
// []WeakCell population. It is retained as the oracle for the
// scalar-vs-batched cross-check test, which pins the batched kernel to
// it bit for bit.
func (e *AnalyticEngine) characterizeRowIntoScalar(victim int, spec pattern.Spec, opts RunOpts, res *RowResult) error {
	opts = opts.withDefaults()
	if err := checkVictim(victim, e.numRows); err != nil {
		*res = RowResult{}
		return err
	}
	*res = RowResult{Victim: victim, Spec: spec, NoBitflip: true, Flips: res.Flips[:0]}

	terms := e.termsFor(&spec)
	tf := e.params.TempFactor(opts.TempC)
	maxIters := spec.MaxIterations(opts.Budget)
	cells := e.cellsFor(victim, opts.Run)

	bestIter := int64(math.MaxInt64)
	bestAct := 0
	bestIdx := e.bestIdx[:0]
	for i := range cells {
		c := &cells[i]
		// A cell only produces an observable flip if the victim data
		// pattern stores the value its mechanism attacks.
		if opts.Data.VictimBitAt(c.Bit) != c.Dir.From() {
			continue
		}
		fp, ok := firstFlip(c, terms, e.weakSide, tf, maxIters, &e.scratch)
		if !ok {
			continue
		}
		switch {
		case fp.iter < bestIter || (fp.iter == bestIter && fp.act < bestAct):
			bestIter, bestAct = fp.iter, fp.act
			bestIdx = append(bestIdx[:0], i)
		case fp.iter == bestIter && fp.act == bestAct:
			bestIdx = append(bestIdx, i)
		}
	}
	e.bestIdx = bestIdx
	if len(bestIdx) == 0 {
		return nil
	}

	timeToFirst := time.Duration(bestIter-1)*spec.IterationTime() + terms[bestAct].end
	if timeToFirst > opts.Budget {
		return nil
	}
	res.NoBitflip = false
	res.Iterations = bestIter
	res.ACmin = (bestIter-1)*int64(spec.ActsPerIteration()) + int64(bestAct) + 1
	res.TimeToFirst = timeToFirst
	for _, i := range bestIdx {
		c := &cells[i]
		res.Flips = append(res.Flips, device.Bitflip{
			Row:  victim,
			Bit:  c.Bit,
			Dir:  c.Dir,
			Mech: c.Mech,
		})
	}
	return nil
}

// NumRows returns the engine's bank row count.
func (e *AnalyticEngine) NumRows() int { return e.numRows }
