package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

// naiveFlip is the brute-force oracle for the fast-forward kernel: it
// executes every float addition one by one.
func naiveFlip(first, steady []float64, maxIters int64) (int64, bool) {
	acc := 0.0
	for iter := int64(1); iter <= maxIters; iter++ {
		ds := steady
		if iter == 1 {
			ds = first
		}
		for _, d := range ds {
			acc += d
			if acc >= 1 {
				return iter, true
			}
		}
	}
	return 0, false
}

func naiveAccAfter(first, steady []float64, iters int64) float64 {
	acc := 0.0
	for iter := int64(1); iter <= iters; iter++ {
		ds := steady
		if iter == 1 {
			ds = first
		}
		for _, d := range ds {
			acc += d
		}
	}
	return acc
}

// TestFastForwardKernelMatchesNaive cross-checks flipIteration and
// accAfter against executing the additions one by one, over random
// delta schedules spanning many magnitudes plus hand-built adversarial
// cases (rounding stalls, exact round-half-even ties, zero deltas).
func TestFastForwardKernelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfa57))
	check := func(name string, first, steady []float64, maxIters int64) {
		t.Helper()
		wantIter, wantOK := naiveFlip(first, steady, maxIters)
		gotIter, gotOK := flipIteration(first, steady, maxIters)
		if gotIter != wantIter || gotOK != wantOK {
			t.Fatalf("%s: flipIteration = %d,%v, naive = %d,%v (first=%v steady=%v)",
				name, gotIter, gotOK, wantIter, wantOK, first, steady)
		}
		cap := wantIter - 1
		if !wantOK {
			cap = maxIters
		}
		for _, iters := range []int64{0, 1, 2, cap / 2, cap} {
			if iters < 0 {
				continue
			}
			got := accAfter(first, steady, iters)
			want := naiveAccAfter(first, steady, iters)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: accAfter(%d) = %v (%x), naive = %v (%x)",
					name, iters, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}

	for i := 0; i < 300; i++ {
		acts := 1 + rng.Intn(2)
		scale := math.Ldexp(1, -(8 + rng.Intn(24))) // per-act deltas 2^-31..2^-8
		first := make([]float64, acts)
		steady := make([]float64, acts)
		for a := 0; a < acts; a++ {
			steady[a] = rng.Float64() * scale
			if rng.Intn(4) == 0 {
				first[a] = steady[a] // warm-up == steady for some acts
			} else {
				first[a] = rng.Float64() * scale
			}
		}
		check("random", first, steady, int64(10+rng.Intn(200000)))
	}

	ulp := math.Ldexp(1, -53) // ulp of the [0.5, 1) binade
	check("stall even tie", []float64{0.5}, []float64{ulp / 2}, 100000)
	check("odd tie climbs", []float64{0.5 + ulp}, []float64{ulp / 2}, 100000)
	check("tiny stall", []float64{0.25}, []float64{math.Ldexp(1, -80)}, 100000)
	check("zero deltas", []float64{0}, []float64{0}, 100000)
	check("mixed zero act", []float64{0.001, 0}, []float64{0.0005, 0}, 100000)
	check("first iter flip", []float64{0.6, 0.6}, []float64{0.1, 0.1}, 10)
	check("huge delta", []float64{0.9}, []float64{64.0}, 10)
	check("crossing near one", []float64{0.125}, []float64{0.12499999999}, 100)
}

// mkBank builds a bank for one engine comparison run.
func mkBank(t *testing.T, profile device.Profile, params device.DisturbParams, runSeed int64, mapper device.RowMapper) *device.Bank {
	t.Helper()
	b, err := device.NewBank(device.BankConfig{
		Profile: profile,
		Params:  params,
		NumRows: 4096,
		RunSeed: runSeed,
		Mapper:  mapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// compareFastExact characterizes the same (victim, spec, opts) with the
// fast-forward and the exact-replay engine on twin banks and asserts
// byte-identical RowResults plus identical victim-row microstate
// (accumulators, flip flags) and ACT/PRE counters.
func compareFastExact(t *testing.T, label string, fastBank, exactBank *device.Bank, victim int, spec pattern.Spec, opts RunOpts) {
	t.Helper()
	fast := NewBankEngine(fastBank)
	exact := NewBankEngine(exactBank, WithExactReplay())
	got, err := fast.CharacterizeRow(victim, spec, opts)
	if err != nil {
		t.Fatalf("%s: fast: %v", label, err)
	}
	want, err := exact.CharacterizeRow(victim, spec, opts)
	if err != nil {
		t.Fatalf("%s: exact: %v", label, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: RowResult differs:\nfast:  %+v\nexact: %+v", label, got, want)
	}
	fc := fastBank.VictimCells(victim)
	ec := exactBank.VictimCells(victim)
	if len(fc) != len(ec) {
		t.Fatalf("%s: cell counts differ: %d vs %d", label, len(fc), len(ec))
	}
	for i := range fc {
		if math.Float64bits(fc[i].Accumulated()) != math.Float64bits(ec[i].Accumulated()) {
			t.Fatalf("%s: cell %d (bit %d) acc differs: fast %v exact %v",
				label, i, fc[i].Bit, fc[i].Accumulated(), ec[i].Accumulated())
		}
		if fc[i].Flipped() != ec[i].Flipped() {
			t.Fatalf("%s: cell %d flipped differs: fast %v exact %v",
				label, i, fc[i].Flipped(), ec[i].Flipped())
		}
	}
	fa, fp, _ := fastBank.Counters()
	ea, ep, _ := exactBank.Counters()
	if fa != ea || fp != ep {
		t.Fatalf("%s: counters differ: fast %d/%d exact %d/%d", label, fa, fp, ea, ep)
	}
}

// TestBankFastMatchesExactReplay sweeps the Table 2 grid (all three
// pattern families at the paper's tAggON marks) across both data
// patterns and four run-noise seeds and requires the fast-forward path
// to be byte-identical to full act-by-act execution — flip bits,
// iterations, act index, time, NoBitflip, and the victim row's
// post-experiment microstate.
func TestBankFastMatchesExactReplay(t *testing.T) {
	mi, err := chipdb.ByID("S1")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)

	kinds := []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined}
	datas := []device.DataPattern{device.Checkerboard, device.RowStripe}
	for _, kind := range kinds {
		for _, aggOn := range timing.Table2Marks() {
			spec, err := pattern.New(kind, aggOn, timing.Default())
			if err != nil {
				t.Fatal(err)
			}
			for _, data := range datas {
				for seed := int64(0); seed < 4; seed++ {
					label := kind.Short() + "@" + aggOn.String() + "/" + data.String() + "/seed" + string(rune('0'+seed))
					fastBank := mkBank(t, profile, params, seed, nil)
					exactBank := mkBank(t, profile, params, seed, nil)
					victim := 100 + int(seed)*911
					compareFastExact(t, label, fastBank, exactBank, victim, spec, RunOpts{Data: data})
				}
			}
		}
	}
}

// TestBankFastPropertyFuzz fuzzes (module, spec, run seed, temperature,
// data pattern, budget, mapper) tuples — including oversized budgets
// that trip retention contamination, no-flip boundary rows, and
// multi-flip ties — and asserts fast-forward vs exact-replay equality
// on every one.
func TestBankFastPropertyFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	mods := chipdb.Modules()
	params := device.DefaultParams()
	kinds := []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined}
	datas := []device.DataPattern{
		device.Checkerboard, device.CheckerboardInv,
		device.AllOnes, device.AllZeros, device.RowStripe,
	}

	for i := 0; i < 48; i++ {
		mi := mods[rng.Intn(len(mods))]
		profile := mi.Profile(params)
		kind := kinds[rng.Intn(len(kinds))]

		// Budgets pair with tAggON so the exact oracle stays fast: short
		// aggressor on-times get small budgets, long on-times can afford
		// budgets past tREFW (exercising the retention readback).
		var aggOn, budget time.Duration
		switch rng.Intn(3) {
		case 0:
			aggOn = timing.TRAS + time.Duration(rng.Intn(1200))*time.Nanosecond
			budget = time.Duration(50+rng.Intn(1500)) * time.Microsecond
		case 1:
			aggOn = time.Duration(2+rng.Intn(20)) * time.Microsecond
			budget = time.Duration(1+rng.Intn(20)) * time.Millisecond
		default:
			aggOn = timing.AggOnNineTREFI + time.Duration(rng.Intn(200))*time.Microsecond
			budget = time.Duration(20+rng.Intn(70)) * time.Millisecond
		}
		spec, err := pattern.New(kind, aggOn, timing.Default())
		if err != nil {
			t.Fatal(err)
		}

		var mapper device.RowMapper
		if rng.Intn(4) == 0 {
			mapper = xorShuffle{mask: 1 << (2 + rng.Intn(4))}
		}
		seed := int64(rng.Intn(5))
		opts := RunOpts{
			Budget: budget,
			Data:   datas[rng.Intn(len(datas))],
			TempC:  30 + 60*rng.Float64(),
			Run:    0,
		}
		victim := 2 + rng.Intn(4092)
		label := mi.ID + "/" + spec.String() + "/" + opts.Data.String()
		fastBank := mkBank(t, profile, params, seed, mapper)
		exactBank := mkBank(t, profile, params, seed, mapper)
		compareFastExact(t, label, fastBank, exactBank, victim, spec, opts)
	}
}

// xorShuffle is an in-DRAM remapping test double (bijective on
// power-of-two banks). Under it the logical aggressors are not the
// physical neighbours, so the fast path must profile the true physical
// distances or fall back.
type xorShuffle struct{ mask int }

func (m xorShuffle) Physical(l int) int { return l ^ m.mask }
func (m xorShuffle) Logical(p int) int  { return p ^ m.mask }

// TestBankFastReusedEngine pins engine reuse: repeated
// characterizations with one engine (the campaign shape — spec memo,
// scratch reuse, rows revisited) stay identical to fresh exact runs.
func TestBankFastReusedEngine(t *testing.T) {
	mi, err := chipdb.ByID("M4")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	fastBank := mkBank(t, profile, params, 1, nil)
	exactBank := mkBank(t, profile, params, 1, nil)
	fast := NewBankEngine(fastBank)
	exact := NewBankEngine(exactBank, WithExactReplay())
	spec, err := pattern.New(pattern.Combined, timing.AggOnTREFI, timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := pattern.New(pattern.DoubleSided, 636*time.Nanosecond, timing.Default())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, s := range []pattern.Spec{spec, spec2} {
			for _, victim := range []int{512, 513, 512} {
				got, err := fast.CharacterizeRow(victim, s, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := exact.CharacterizeRow(victim, s, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d %v victim %d: %+v vs %+v", round, s, victim, got, want)
				}
			}
		}
	}
}
