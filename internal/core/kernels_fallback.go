//go:build purego || (!amd64 && !arm64)

package core

// pickDamageKernels under the purego tag (or on an architecture
// without a tuned variant) keeps the scalar reference kernels — the
// escape hatch when a vector path is suspected of misbehaving.
func pickDamageKernels() (split, fused func(*damageKernArgs), level string) {
	return damageSplitScalar, damageFusedScalar, "scalar"
}

// bankFastEnabled gates the integer-stepping bulk fast-forward solver
// (bankbatch.go). Under purego the original float closed-form path in
// bankfast.go runs instead, as the bit-exactness reference.
const bankFastEnabled = false
