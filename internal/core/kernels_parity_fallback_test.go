//go:build purego || (!amd64 && !arm64)

package core

// vectorKernelsUnderTest is empty on builds whose dispatch resolves to
// the scalar reference; the parity tests then only pin the dispatched
// function to the scalar body.
func vectorKernelsUnderTest() []kernelUnderTest { return nil }
