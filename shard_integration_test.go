package rowfuse_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/report"
	"rowfuse/internal/resultio"
	"rowfuse/internal/timing"
)

// campaignConfig is a reduced, multi-manufacturer campaign whose grid
// (3 modules x 3 patterns x 3 tAggON points = 27 cells) is big enough
// to shard meaningfully but quick enough for CI.
func campaignConfig(t *testing.T) core.StudyConfig {
	t.Helper()
	var mods []chipdb.ModuleInfo
	for _, id := range []string{"S0", "H1", "M4"} {
		mi, err := chipdb.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, mi)
	}
	return core.StudyConfig{
		Modules:       mods,
		Sweep:         []time.Duration{timing.TRAS, 7800 * time.Nanosecond, timing.AggOnNineTREFI},
		RowsPerRegion: 4,
		Dies:          1,
		Runs:          1,
	}
}

// renderCampaign renders the Table 2 and Fig 4 reproductions to bytes.
func renderCampaign(t *testing.T, s *core.Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Table2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	fig4, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Fig4(&buf, fig4); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedCampaignReproducesUnshardedOutputs runs the acceptance
// path of the sharded campaign runner: n independent shard processes
// (modelled as separate Study values), each writing a checkpoint file,
// whose merge renders byte-identical Table 2 and Fig 4 output to a
// single monolithic run.
func TestShardedCampaignReproducesUnshardedOutputs(t *testing.T) {
	single := core.NewStudy(campaignConfig(t))
	if err := single.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := renderCampaign(t, single)

	dir := t.TempDir()
	fingerprint := campaignConfig(t).Fingerprint()
	const n = 3
	var paths []string
	for i := 0; i < n; i++ {
		cfg := campaignConfig(t)
		cfg.Shard = core.ShardPlan{Index: i, Count: n}
		path := filepath.Join(dir, cfg.Shard.String()[:1]+".json")
		plan := cfg.Shard
		cfg.Checkpoint = func(cells map[core.CellKey]core.AggregateState) error {
			return resultio.WriteCheckpointFile(path, resultio.NewCheckpoint(fingerprint, plan, cells))
		}
		if err := core.NewStudy(cfg).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	var cps []*resultio.Checkpoint
	for _, path := range paths {
		cp, err := resultio.ReadCheckpointFile(path, fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		cps = append(cps, cp)
	}
	merged, err := resultio.MergeCheckpoints(cps...)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := merged.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	fused := core.NewStudy(campaignConfig(t))
	if err := fused.Seed(cells); err != nil {
		t.Fatal(err)
	}
	got := renderCampaign(t, fused)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded+merged rendering differs from the unsharded run:\n--- merged ---\n%s\n--- single ---\n%s", got, want)
	}
}

// TestCampaignResumeAfterKill kills a campaign mid-run (the checkpoint
// callback errors out after its second write, as a crash between
// checkpoints would), then resumes from the surviving file and verifies
// the finished campaign is bit-identical to an uninterrupted one.
func TestCampaignResumeAfterKill(t *testing.T) {
	clean := core.NewStudy(campaignConfig(t))
	if err := clean.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := clean.Snapshot()

	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	fingerprint := campaignConfig(t).Fingerprint()
	errKilled := errors.New("simulated crash")

	cfg := campaignConfig(t)
	cfg.Concurrency = 1
	cfg.CheckpointEvery = 5
	writes := 0
	cfg.Checkpoint = func(cells map[core.CellKey]core.AggregateState) error {
		if err := resultio.WriteCheckpointFile(path, resultio.NewCheckpoint(fingerprint, core.ShardPlan{}, cells)); err != nil {
			return err
		}
		writes++
		if writes == 2 {
			return errKilled
		}
		return nil
	}
	if err := core.NewStudy(cfg).Run(context.Background()); !errors.Is(err, errKilled) {
		t.Fatalf("interrupted run returned %v, want the simulated crash", err)
	}

	cp, err := resultio.ReadCheckpointFile(path, fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cp.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 || len(cells) >= len(want) {
		t.Fatalf("checkpoint has %d cells; the kill should land mid-campaign (total %d)", len(cells), len(want))
	}

	resumeCfg := campaignConfig(t)
	resumeCfg.Checkpoint = func(cells map[core.CellKey]core.AggregateState) error {
		return resultio.WriteCheckpointFile(path, resultio.NewCheckpoint(fingerprint, core.ShardPlan{}, cells))
	}
	resumed := core.NewStudy(resumeCfg)
	if err := resumed.Seed(cells); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := resumed.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed campaign differs from the uninterrupted run")
	}

	// The final checkpoint on disk holds the complete campaign and can
	// re-render without any study run at all.
	final, err := resultio.ReadCheckpointFile(path, fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	finalCells, err := final.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(finalCells) != len(want) {
		t.Fatalf("final checkpoint has %d cells, want %d", len(finalCells), len(want))
	}
	rerender := core.NewStudy(campaignConfig(t))
	if err := rerender.Seed(finalCells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderCampaign(t, rerender), renderCampaign(t, clean)) {
		t.Fatal("re-rendered checkpoint differs from the live run")
	}
	_ = os.Remove(path)
}
