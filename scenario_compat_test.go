package rowfuse_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/resultio"
	"rowfuse/internal/timing"
)

// The scenario-axis compatibility suite. A default (single-scenario)
// campaign must be indistinguishable — byte for byte — from the
// pre-scenario campaign layer: the config fingerprint, the checkpoint
// file, and the rendered tables (TestGoldenRenderings) are all pinned
// against goldens captured before the scenario axis existed. Any
// scenario change that perturbs a default campaign's bytes invalidates
// every checkpoint and manifest in the field, so these tests fail it.

// compatConfig is a small but multi-module, multi-die campaign whose
// checkpoint bytes are pinned.
func compatConfig() core.StudyConfig {
	return core.StudyConfig{
		Modules:       chipdb.Modules()[:2],
		Sweep:         timing.Table2Marks(),
		RowsPerRegion: 2,
		Dies:          2,
		Runs:          2,
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the pre-scenario golden (-want +got):\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestScenarioGoldenFingerprints pins the config fingerprints of a
// fully-defaulted study and of the compat campaign. The fingerprint is
// what gates every checkpoint resume, shard merge and dispatch submit,
// so a default-scenario grid hashing differently than the pre-scenario
// code would orphan every existing campaign.
func TestScenarioGoldenFingerprints(t *testing.T) {
	got := []byte(
		"default " + core.StudyConfig{}.Fingerprint() + "\n" +
			"compat " + compatConfig().Fingerprint() + "\n")
	checkGolden(t, "golden_fingerprints.txt", got)
}

// TestScenarioGoldenCheckpoint pins the checkpoint file of the compat
// campaign byte for byte: cell keys, sort order, aggregate state and
// JSON layout must all match the pre-scenario format exactly.
func TestScenarioGoldenCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign")
	}
	cfg := compatConfig()
	s := core.NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp := resultio.NewCheckpoint(cfg.Fingerprint(), core.ShardPlan{}, s.Snapshot())
	var buf bytes.Buffer
	if err := resultio.SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_checkpoint.json", buf.Bytes())
}
