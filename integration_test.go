package rowfuse_test

import (
	"testing"
	"time"

	"rowfuse/internal/bender"
	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/mitigation"
	"rowfuse/internal/pattern"
	"rowfuse/internal/rowmap"
	"rowfuse/internal/timing"
)

// TestEndToEndMethodology replays the paper's full methodology on one
// simulated module, end to end:
//
//  1. build the device with its vendor's in-DRAM row remapping,
//  2. reverse-engineer the physical row layout by hammering (Sec. 3.2),
//  3. run the combined-pattern characterization through the DRAM Bender
//     program path on physically adjacent rows found in step 2,
//  4. cross-check the measured ACmin against the analytic engine and
//     against the paper's Table 2 regime.
func TestEndToEndMethodology(t *testing.T) {
	mi, err := chipdb.ByID("H1")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	scheme := rowmap.ForVendor(mi.Mfr.Name())

	const numRows, rowBytes = 4096, 256
	bank, err := device.NewBank(device.BankConfig{
		Profile:  profile,
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
		Mapper:   scheme,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Step 2: recover physical adjacency around logical row 500.
	hammerer, err := rowmap.NewDeviceHammerer(rowmap.DeviceHammererConfig{
		Bank:        bank,
		Timings:     timing.Default(),
		HammerACmin: profile.HammerACmin,
		Window:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := rowmap.Reverse(hammerer, 500, 508, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) == 0 {
		t.Fatal("reverse engineering found no victims")
	}
	correct, checked := rowmap.Verify(scheme, inferred, numRows)
	if checked == 0 || correct < checked*9/10 {
		t.Fatalf("reverse engineering accuracy %d/%d", correct, checked)
	}

	// Pick one recovered victim with its two aggressor rows.
	var victim int
	var aggs []int
	for v, a := range inferred {
		if len(a) == 2 {
			victim, aggs = v, a
			break
		}
	}
	if aggs == nil {
		t.Fatal("no victim with two recovered aggressors")
	}

	// Step 3: characterize through the bender program path. The
	// recovered aggressors are logical addresses; the combined pattern
	// needs the *physical* sandwich, which is exactly what the
	// reverse-engineering gives us. Build the program against a fresh
	// identity-mapped chip at the physical coordinates to compare with
	// the analytic engine.
	physVictim := scheme.Physical(victim)
	spec, err := pattern.New(pattern.Combined, 636*time.Nanosecond, timing.Default())
	if err != nil {
		t.Fatal(err)
	}

	// NewChip derives a per-die serial (die 0); the analytic engine must
	// model the same die to see the same weak-cell population.
	analytic, err := core.NewAnalyticEngine(core.AnalyticConfig{
		Profile:  device.DieProfile(profile, 0),
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := analytic.CharacterizeRow(physVictim, spec, core.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if want.NoBitflip {
		t.Fatal("analytic engine reports no flip for the recovered victim")
	}

	// Execute iters via a compiled bender program on an identity-mapped
	// chip and confirm the flip appears in the victim readback.
	chip, err := device.NewChip(device.ChipConfig{
		Profile:  profile,
		Params:   params,
		NumBanks: 1,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := bender.NewEngine(bender.EngineConfig{Chip: chip, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bender.CompileCharacterization(
		spec, 0, physVictim, rowBytes, 0xAA, 0x55, want.Iterations+want.Iterations/50+2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(prog); err != nil {
		t.Fatal(err)
	}
	captured := eng.Captured()
	victimData := captured[len(captured)-rowBytes:]
	flipped := false
	for _, b := range victimData {
		if b != 0x55 {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Error("bender-path characterization did not reproduce the analytic flip")
	}

	// The recorded command trace of the whole experiment must be
	// JEDEC-legal.
	if err := eng.Trace().Validate(timing.Default()); err != nil {
		t.Errorf("experiment trace violates timing rules: %v", err)
	}

	// Step 4: the measured regime matches the paper: H1's combined
	// ACmin at 636 ns sits well below its RowHammer ACmin.
	if float64(want.ACmin) > mi.Paper.RH.Avg {
		t.Errorf("combined ACmin %d above RowHammer baseline %.0f", want.ACmin, mi.Paper.RH.Avg)
	}
}

// TestMitigationEndToEnd: the full defense story on one module — the
// unprotected combined pattern flips, TRR blocks it, and rank ECC would
// have corrected the single-bit outcome.
func TestMitigationEndToEnd(t *testing.T) {
	mi, err := chipdb.ByID("S3")
	if err != nil {
		t.Fatal(err)
	}
	params := device.DefaultParams()
	newBank := func() *device.Bank {
		b, err := device.NewBank(device.BankConfig{
			Profile: mi.Profile(params),
			Params:  params,
			NumRows: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	spec, err := pattern.New(pattern.Combined, 636*time.Nanosecond, timing.Default())
	if err != nil {
		t.Fatal(err)
	}

	const victim = 1500
	bank := newBank()
	base, err := mitigation.Run(mitigation.EvalConfig{Bank: bank, Spec: spec, Victim: victim})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Flipped {
		t.Fatal("unprotected combined pattern did not flip")
	}

	// ECC masking of the observed single-bit flip.
	observed, err := bank.RowData(victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := device.FillRow(bank.RowBytes(), 0x55)
	ecc, err := mitigation.EvaluateRow(golden, observed)
	if err != nil {
		t.Fatal(err)
	}
	if ecc.Corrected == 0 || ecc.ResidualErr != 0 {
		t.Errorf("rank ECC outcome %+v, want the first flip corrected", ecc)
	}

	// TRR protection.
	bank2 := newBank()
	guard, err := mitigation.NewGuard(mitigation.GuardConfig{Bank: bank2})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := mitigation.Run(mitigation.EvalConfig{
		Bank: bank2, Spec: spec, Victim: victim,
		Guard: guard, RefInterval: timing.TREFI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Flipped {
		t.Errorf("TRR failed against the combined pattern at 636ns (flip at %v)", prot.FirstFlipAt)
	}
}
