module rowfuse

go 1.24
