package rowfuse_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"rowfuse/internal/core"
	"rowfuse/internal/dispatch"
	"rowfuse/internal/pattern"
	"rowfuse/internal/report"
	"rowfuse/internal/timing"
)

// fleetE2EConfig is the acceptance-scale fleet campaign: 10^5 synthetic
// chips in 6250-chip blocks — 16 cells, enough for real work stealing —
// at the shallowest per-chip depth (breadth is the point of a fleet).
func fleetE2EConfig() core.StudyConfig {
	return core.StudyConfig{
		Fleet:         &core.FleetPlan{Chips: 100000, ChipsPerCell: 6250, RowsPerChip: 1, Seed: 42},
		Patterns:      []pattern.Kind{pattern.DoubleSided},
		Sweep:         []time.Duration{timing.AggOnTREFI},
		RowsPerRegion: 1,
		Runs:          1,
	}
}

// TestFleetDispatchWorkerKillByteIdentical drives a 10^5-chip fleet
// campaign through the dispatch stack — three workers, one of which
// dies holding a lease — and requires the merged distribution fold to
// be byte-identical to an unsharded Study.Run: same checkpoint bytes,
// same rendered fleet distribution.
func TestFleetDispatchWorkerKillByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 10^5-chip fleet campaign twice")
	}
	cfg := fleetE2EConfig()
	single := core.NewStudy(cfg)
	if err := single.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantBytes := checkpointBytes(t, cfg, single)
	wantStats, err := core.FleetStats(single.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var wantTable bytes.Buffer
	if err := report.FleetDistribution(&wantTable, wantStats, 16); err != nil {
		t.Fatal(err)
	}
	if wantStats[0].Chips() != 100000 {
		t.Fatalf("unsharded run observed %d chips, want 100000", wantStats[0].Chips())
	}

	dir := t.TempDir()
	const units = 8
	m := dispatch.NewManifest(cfg, units, 500*time.Millisecond)
	if m.GridSize() != 16 {
		t.Fatalf("manifest grid size %d, want 16 (fleet axis lost on the wire?)", m.GridSize())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := dispatch.InitDir(dir, m); err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases a unit and crashes without ever
	// heartbeating; its lease must expire and the unit be re-granted to
	// a live worker.
	doomed, err := dispatch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Acquire("doomed"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted int
		firstErr  error
	)
	for w := 0; w < 2; w++ {
		name := []string{"alpha", "beta"}[w]
		wq, err := dispatch.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := dispatch.Work(ctx, wq, dispatch.WorkerOptions{Name: name, Log: t.Logf})
			mu.Lock()
			defer mu.Unlock()
			submitted += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if submitted != units {
		t.Fatalf("live workers submitted %d units, want all %d (incl. the dead worker's re-granted unit)", submitted, units)
	}

	coord, err := dispatch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := coord.Merged()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cp.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	fused := core.NewStudy(fleetE2EConfig())
	if err := fused.Seed(cells); err != nil {
		t.Fatal(err)
	}
	if got := checkpointBytes(t, cfg, fused); !bytes.Equal(got, wantBytes) {
		t.Fatal("dispatched fleet checkpoint differs from the unsharded run")
	}

	gotStats, err := core.FleetStats(fused.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var gotTable bytes.Buffer
	if err := report.FleetDistribution(&gotTable, gotStats, 16); err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Fatalf("dispatched fleet distribution differs:\n--- dispatched ---\n%s\n--- single ---\n%s",
			gotTable.String(), wantTable.String())
	}

	// The coordinator-side partial renderer must produce the same
	// complete distribution from the merged checkpoint.
	var partial bytes.Buffer
	if err := dispatch.RenderPartial(&partial, m, cp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fleet distribution", "complete: 16/16 cells", "campaign coverage: 16/16 cells"} {
		if !strings.Contains(partial.String(), want) {
			t.Fatalf("RenderPartial output missing %q:\n%s", want, partial.String())
		}
	}
}
