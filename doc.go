// Package rowfuse reproduces "An Experimental Characterization of
// Combined RowHammer and RowPress Read Disturbance in Modern DRAM Chips"
// (Luo et al., DSN Disrupt 2024) as a self-contained Go library.
//
// The paper characterizes a DRAM access pattern that combines RowHammer
// (many short aggressor-row activations) with RowPress (long
// aggressor-row open times) on 84 real DDR4 chips, driven by an
// FPGA-based testing platform. This repository replaces every hardware
// component with a calibrated simulation and rebuilds the full
// characterization pipeline on top:
//
//   - internal/device — a cell-level DRAM device model with a
//     two-mechanism read-disturbance physics model, refresh, retention,
//     data-pattern dependence and in-DRAM row remapping;
//   - internal/bender — a DRAM Bender / SoftMC-style programmable memory
//     controller (instruction set, assembler, cycle interpreter);
//   - internal/thermal — the heater-pad PID temperature control loop;
//   - internal/chipdb — the paper's Table 1 chip inventory with per-DIMM
//     disturbance profiles inverted from Table 2;
//   - internal/rowmap — vendor row-remapping schemes and the
//     reverse-engineering methodology that recovers them;
//   - internal/pattern — the single-sided, double-sided and combined
//     access patterns of Fig. 3;
//   - internal/core — the characterization engines (ACmin, time to first
//     bitflip, bitflip recording, the 60 ms experiment budget) and the
//     study orchestration behind every figure and table;
//   - internal/mitigation — TRR and rank-ECC models (the paper's
//     future-work item on mitigations);
//   - internal/report — table/figure renderers and CSV emitters.
//
// See README.md for a quickstart, DESIGN.md for the model derivation and
// calibration, and EXPERIMENTS.md for paper-vs-measured numbers. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.
package rowfuse
