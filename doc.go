// Package rowfuse reproduces "An Experimental Characterization of
// Combined RowHammer and RowPress Read Disturbance in Modern DRAM Chips"
// (Luo et al., DSN Disrupt 2024) as a self-contained Go library.
//
// The paper characterizes a DRAM access pattern that combines RowHammer
// (many short aggressor-row activations) with RowPress (long
// aggressor-row open times) on 84 real DDR4 chips, driven by an
// FPGA-based testing platform. This repository replaces every hardware
// component with a calibrated simulation and rebuilds the full
// characterization pipeline on top:
//
//   - internal/device — a cell-level DRAM device model with a
//     two-mechanism read-disturbance physics model, refresh, retention,
//     data-pattern dependence and in-DRAM row remapping;
//   - internal/bender — a DRAM Bender / SoftMC-style programmable memory
//     controller (instruction set, assembler, cycle interpreter);
//   - internal/thermal — the heater-pad PID temperature control loop;
//   - internal/chipdb — the paper's Table 1 chip inventory with per-DIMM
//     disturbance profiles inverted from Table 2;
//   - internal/rowmap — vendor row-remapping schemes and the
//     reverse-engineering methodology that recovers them;
//   - internal/pattern — the single-sided, double-sided and combined
//     access patterns of Fig. 3;
//   - internal/core — the characterization engines (ACmin, time to first
//     bitflip, bitflip recording, the 60 ms experiment budget) and the
//     study orchestration behind every figure and table;
//   - internal/mitigation — TRR and rank-ECC models (the paper's
//     future-work item on mitigations);
//   - internal/report — table/figure renderers and CSV emitters;
//   - internal/resultio — JSON result archives and campaign
//     checkpoints.
//
// # Campaigns, shards and checkpoints
//
// A characterization campaign (core.Study) evaluates a cell grid of
// (module, pattern, tAggON) combinations. Three pieces make campaigns
// scale past one process and survive crashes:
//
//   - core.ShardPlan deterministically partitions the cell grid into
//     i/n slices; independent processes each run one shard, and because
//     every cell is computed wholly inside one shard, fusing shards is
//     bit-identical to a monolithic run.
//   - core.AggregateState is the serializable, mergeable per-cell
//     aggregate (Welford moments, minima, flip sets). Study.Snapshot
//     exports it, Study.Seed restores it, and a seeded cell is skipped
//     on the next Run — which is all "resume" is.
//   - resultio checkpoints persist snapshots with a config fingerprint
//     and an atomically-replaced file format; SaveCheckpoint,
//     LoadCheckpoint and MergeCheckpoints (with the sentinel errors
//     ErrBadCheckpoint and ErrConfigMismatch) round out the cycle.
//
// cmd/characterize wires these together behind -shard, -checkpoint,
// -resume and -merge.
//
// # Performance
//
// The campaign hot path is allocation-free in steady state.
// device.RowPopulation splits cell generation into a deterministic base
// population (cached per row, shared across every cell of one die via
// device.PopulationCache) and a per-run noise application that appends
// value-typed cells into a reused buffer — byte-identical to
// regenerating from scratch. core.AnalyticEngine memoizes per-spec
// damage terms, hoists the first-flip solver's scratch, and offers
// CharacterizeRowInto for buffer-recycling callers. Study.Run schedules
// per-die work units so fat 8/16-die modules spread across the worker
// pool while the per-cell aggregates still fold in a sequential run's
// exact observation order (checkpoints stay byte-identical).
//
// Benchmarks guard all of this: run
//
//	go test -run '^$' -bench . -benchmem .
//
// and record snapshots on the BENCH_*.json perf trajectory with
// cmd/benchjson. cmd/characterize takes -cpuprofile/-memprofile to
// profile full-scale campaigns.
//
// See README.md for a quickstart and shard/resume examples. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.
package rowfuse
