// Package rowfuse reproduces "An Experimental Characterization of
// Combined RowHammer and RowPress Read Disturbance in Modern DRAM Chips"
// (Luo et al., DSN Disrupt 2024) as a self-contained Go library.
//
// The paper characterizes a DRAM access pattern that combines RowHammer
// (many short aggressor-row activations) with RowPress (long
// aggressor-row open times) on 84 real DDR4 chips, driven by an
// FPGA-based testing platform. This repository replaces every hardware
// component with a calibrated simulation and rebuilds the full
// characterization pipeline on top:
//
//   - internal/device — a cell-level DRAM device model with a
//     two-mechanism read-disturbance physics model, refresh, retention,
//     data-pattern dependence and in-DRAM row remapping;
//   - internal/bender — a DRAM Bender / SoftMC-style programmable memory
//     controller (instruction set, assembler, cycle interpreter);
//   - internal/thermal — the heater-pad PID temperature control loop;
//   - internal/chipdb — the paper's Table 1 chip inventory with per-DIMM
//     disturbance profiles inverted from Table 2;
//   - internal/rowmap — vendor row-remapping schemes and the
//     reverse-engineering methodology that recovers them;
//   - internal/pattern — the single-sided, double-sided and combined
//     access patterns of Fig. 3;
//   - internal/core — the characterization engines (ACmin, time to first
//     bitflip, bitflip recording, the 60 ms experiment budget) and the
//     study orchestration behind every figure and table;
//   - internal/mitigation — TRR and rank-ECC models (the paper's
//     future-work item on mitigations);
//   - internal/report — table/figure renderers and CSV emitters;
//   - internal/resultio — JSON result archives and campaign
//     checkpoints.
//
// # Campaigns, shards and checkpoints
//
// A characterization campaign (core.Study) evaluates a cell grid of
// (module, pattern, tAggON) combinations. Three pieces make campaigns
// scale past one process and survive crashes:
//
//   - core.ShardPlan deterministically partitions the cell grid into
//     i/n slices; independent processes each run one shard, and because
//     every cell is computed wholly inside one shard, fusing shards is
//     bit-identical to a monolithic run.
//   - core.AggregateState is the serializable, mergeable per-cell
//     aggregate (Welford moments, minima, flip sets). Study.Snapshot
//     exports it, Study.Seed restores it, and a seeded cell is skipped
//     on the next Run — which is all "resume" is.
//   - resultio checkpoints persist snapshots with a config fingerprint
//     and an atomically-replaced file format; SaveCheckpoint,
//     LoadCheckpoint and MergeCheckpoints (with the sentinel errors
//     ErrBadCheckpoint and ErrConfigMismatch) round out the cycle.
//
// cmd/characterize wires these together behind -shard, -checkpoint,
// -resume and -merge.
//
// # Scenario axes
//
// core.Scenario is the fourth campaign grid dimension: a serializable,
// fingerprintable execution context — engine selection (analytic, bank,
// bender-trace, or any kind registered via core.RegisterEngineKind),
// a mitigation configuration (core.MitigationSpec: TRR tracker size,
// refresh-rate multiplier, rank ECC), a thermal setpoint settled
// through the PID plant (core.ThermalSpec), and trace-executor knobs
// (core.TraceSpec). StudyConfig.Scenarios enumerates
// (module, pattern, tAggON, scenario) cells; a nil or single default
// scenario reproduces the pre-scenario grid exactly — same
// fingerprints, same checkpoint bytes, same renderings (pinned by the
// golden compatibility suite in scenario_compat_test.go). Scenario
// cells shard, checkpoint, merge and dispatch like any other cell;
// CellKey.Scenario and the checkpoint format carry the axis only when
// it is non-default, so pre-scenario checkpoint files stay readable
// and re-serializable byte for byte.
//
// Three campaign kinds ride the axis out of the box:
//
//   - Mitigation evaluation (characterize -exp mitigation, or
//     -scenarios mitigations on any grid): every cell re-runs under a
//     defense drawn from core.MitigationScenarios — no defense,
//     counter-based TRR at two tracker sizes, doubled refresh, rank
//     SEC-DED ECC, TRR+ECC stacked. internal/mitigation registers the
//     "mitigated" engine kind: the TRR guard wraps the simulated bank
//     as a core.BankDriver, so the guarded bank satisfies core.Engine
//     and reuses the bank engine's hammer loop (and its event-horizon
//     fast-forward) instead of duplicating it. Study.MitigationSummary
//     and report.MitigationTable/MitigationCSV render flip survival
//     per scenario per module.
//   - Combined-attack crossover (characterize -exp crossover):
//     Study.CrossoverSweep extracts per-tAggON mean time-to-first-flip
//     per pattern, the winning pattern per cell and the tAggON bracket
//     where the winner flips between combined and single-sided
//     RowPress; report.CrossoverTable/CrossoverCSV render it.
//   - Bender-trace execution (characterize -exp bender, or a
//     core.Scenario with Engine: core.EngineBenderTrace): each cell
//     assembles the access pattern into a DRAM Bender program,
//     locates its hammer loop, captures a device.DamageProfile from
//     one interpreted iteration, and fast-forwards over the loop with
//     the same event-horizon solver the bank engine uses — RowResults
//     byte-identical to interpreting every instruction
//     (core.TraceSpec.Exact opts out).
//
// core.NewCampaignSpecBuilder (options: WithExp, WithModule,
// WithScale, WithOperatingPoint, WithScenarioSet, WithChips) is the
// one spec-construction path shared by cmd/characterize, cmd/campaignd
// and the examples; BindCampaignFlags exposes it as the common
// -exp/-rows/-dies/-runs/-module/-chips/-temp/-budget/-scenarios flag
// set, and core.ParseScenarioSet names the built-in scenario sets
// (default, mitigations, bender, bank, thermal:T1,T2,...). A
// thermal:... axis additionally renders the disturbance-vs-settled-
// temperature table (Study.ThermalSummary, report.ThermalTable).
//
// # Fleet-scale populations
//
// -exp fleet swaps the Table 1 inventory for a synthetic chip
// population and answers deployment-scale distribution questions with
// bounded memory:
//
//   - chipdb.PopulationModel generates arbitrary-size fleets from the
//     14 calibrated Table 2 modules: each chip samples a base die and
//     perturbs its measured disturbance numbers with lognormal process
//     and die-to-die factors (priors matched to the spread Table 2
//     shows between same-die-revision modules), then feeds the same
//     Profile() inversion as real inventory. Derive(i) depends only on
//     (Seed, i) — splitmix64-derived per-chip streams — so any chip
//     sub-range is reproducible in isolation, on any shard, in any
//     order.
//   - internal/analysis provides the mergeable streaming statistics
//     the fold reduces into: a DDSketch-style log-binned quantile
//     sketch (1% relative error, commutative order-independent merge,
//     deterministic serialization — FuzzSketchMerge pins both) and
//     exact Welford/Chan moments.
//   - core.FleetPlan places chip blocks on the grid's module axis
//     ("fleet[%08d]" cells, ChipsPerCell chips each), so fleet cells
//     shard, checkpoint, merge and dispatch like any other cell while
//     Study.Run streams each block's chips through a core.Fold whose
//     state is O(sketch), not O(chips)
//     (TestFleetFoldBoundedMemory). core.FleetStats folds completed
//     cells in canonical order into per-vendor/die
//     core.FleetScenarioStat groups; report.FleetDistribution and
//     report.FleetCSV render survival and ACmin/time-to-flip
//     percentiles, with partial-coverage annotations while a
//     distributed campaign converges (dispatch.RenderPartial).
//     Checkpoints carrying fleet state use a bumped format version;
//     grid checkpoints are byte-identical to before and both versions
//     load.
//   - The dispatch cost model weighs a fleet cell by its block's chip
//     count, and the sharded-and-merged fold is byte-identical to an
//     unsharded run (TestFleetDispatchWorkerKillByteIdentical: 10^5
//     chips, three workers, one killed mid-run).
//   - dispatch/registry garbage-collects finished campaigns:
//     campaignd -service -retention D sweeps campaigns that have sat
//     drained or canceled for D (mark on first observation, delete on
//     a later sweep) — journal, checkpoints and meta removed, ID
//     retired.
//
// # Distributed dispatch
//
// internal/dispatch scales the sharded campaign past hand-assigned
// -shard flags: a coordinator turns the StudyConfig into a queue of
// leased work units (one core.ShardPlan slice each) that any number of
// workers drain. The pieces:
//
//   - dispatch.Manifest embeds the full serializable campaign
//     configuration; workers reconstruct the StudyConfig (and its
//     fingerprint) from the manifest, so configuration drift between
//     machines is structurally impossible.
//   - Leases are time-bounded and heartbeat-extended. A worker that
//     stops heartbeating — crashed, partitioned, wedged — loses its
//     lease after the TTL and the unit is re-granted to the next
//     Acquire: work stealing from dead workers. Because shard runs are
//     deterministic, a unit raced to completion by two workers folds
//     to the same bytes; execution is at-least-once, folding is
//     exactly-once (submissions are validated against the fingerprint
//     and the unit's shard plan, and fused through the
//     overlap-checked merge).
//   - dispatch.DirQueue coordinates through a shared directory with
//     no server (exclusively-linked lease and done files; filesystems
//     without hard-link support are detected at init time, the mode is
//     persisted campaign-wide, and the queue falls back to
//     O_CREATE|O_EXCL lock files);
//     dispatch.MemQueue + dispatch.NewHandler/Client run the same
//     protocol over HTTP behind cmd/campaignd.
//   - Dispatch is cost-aware: submissions report the worker's wall
//     time, and a per-cell cost model (die-count priors refined by
//     per-(die count, pattern) observations) drives adaptive unit
//     sizing. The HTTP coordinator re-plans pending, unleased units so
//     expected unit costs equalize (fat cells split finer, cheap cells
//     coalesce; the lease's explicit cell set — not the static i/n
//     plan — is what the worker runs); the serverless directory queue
//     keeps static units and grants the most expensive remaining unit
//     first (LPT), since no process owns the plan there.
//   - Workers write intra-unit checkpoints (Queue.SavePartial) every
//     N completed cells, and a re-granted lease resumes from the dead
//     worker's last partial (Queue.LoadPartial + Study.Seed) instead
//     of recomputing the unit. Partials hold whole-cell deterministic
//     aggregates only, so the failure semantics are unchanged:
//     execution at-least-once, folding exactly-once, and a resumed
//     unit's checkpoint is byte-identical to a from-scratch run.
//   - The coordinator's rolling merged state renders live partial
//     figures: core.PartialTable2 and core.PartialFig4 extract
//     Table 2 / Fig 4 from an incomplete cell map, and
//     report.Table2Partial / report.Fig4Partial annotate coverage
//     ("N of M cells") and print unmeasured cells as "pending", so a
//     converging campaign can be watched without partial data ever
//     posing as complete.
//
// cmd/campaignd (-init/-watch for directory campaigns, -listen for
// the HTTP coordinator) and characterize -worker wire these together.
//
// # Campaign service
//
// On top of single-campaign dispatch, campaignd -service hosts many
// concurrent campaigns behind one process, each resumable across
// coordinator restarts:
//
//   - dispatch/wal is the storage primitive: an append-only record log
//     of CRC-checksummed, magic-coded, sequence-numbered frames. Open
//     heals a torn tail (truncates to the last consistent record and
//     reports what was dropped) and surfaces damage as typed sentinels
//     (wal.ErrTruncated, wal.ErrBadChecksum, wal.ErrUnknownMagic,
//     wal.ErrBadVersion), pinned by a crash-injection table test.
//   - dispatch.WALQueue wraps MemQueue with that log: every transition
//     (init, grant, re-plan, heartbeat, submit, partial, steal,
//     cancel) is journaled as applied, and everything except
//     heartbeats is fsynced before it is acknowledged. Records carry
//     outcomes (minted tokens, computed expiries, plan deltas), so
//     replay is pure delta application — OpenWALQueue reconstructs
//     the exact queue state, live leases and cost model included.
//     Compaction atomically snapshots and truncates the log; a failed
//     append poisons the queue rather than letting memory drift from
//     the journal.
//   - dispatch/registry multiplexes campaigns: fingerprint-derived
//     campaign IDs, a per-campaign worker token (minted at create,
//     compared in constant time), durable metadata committed by an
//     atomic meta.json write, and an HTTP API that namespaces the
//     whole single-campaign dispatch protocol under
//     /v1/campaigns/{id}/... — wrong-campaign and wrong-token
//     submissions fail with dispatch.ErrUnknownCampaign and
//     dispatch.ErrBadCampaignToken, and canceled campaigns answer
//     dispatch.ErrCanceled.
//   - campaignd -service serves the registry (campaigns are created
//     over POST /v1/campaigns); plain -listen -state journals a
//     single campaign through the same WALQueue. SIGINT/SIGTERM stops
//     granting, flushes and fsyncs every journal, and exits 0; a
//     restart resumes from the state directory, and a killed-and-
//     restarted campaign renders byte-identical to an uninterrupted
//     one. Workers join with characterize -worker URL -campaign ID
//     -campaign-token TOKEN (dispatch.DialCampaign).
//
// # Performance
//
// The campaign hot path is a batched, allocation-free solve.
// device.RowPopulation splits cell generation into a deterministic base
// population (cached per row, shared across every cell of one die via
// device.PopulationCache) and per-realization projections: a
// device.SolveView is the struct-of-arrays form of one (row, run-noise
// seed, data pattern) — contiguous threshold/dose slices holding only
// the observable cells — cached on the population so every pattern and
// tAggON cell revisiting the row shares one noise application.
// core.AnalyticEngine solves the whole view at once (solveBatch: a
// branch-light, auto-vectorizable damage phase plus a per-cell locate
// phase replaying the scalar solver's float operations in order, so
// results are bit-identical — cross-checked by
// TestSolveBatchMatchesScalar and the rendering goldens), memoizes
// per-spec damage terms, and offers CharacterizeRowInto for
// buffer-recycling callers. Study.Run schedules per-die work units so
// fat 8/16-die modules spread across the worker pool while the
// per-cell aggregates still fold in a sequential run's exact
// observation order (checkpoints stay byte-identical).
//
// The damage phase of that batched solve dispatches at init to per-CPU
// vector kernels: hand-written AVX2 assembly on amd64 (an AVX-512
// variant is kept in parity reserve; arm64 gets a NEON-shaped loop),
// selected by internal/cpu's CPUID/XGETBV probe, with -tags purego as
// the pure-Go scalar escape hatch. The kernels are bit-exact by
// construction, not approximately fast: lanes parallelize across
// cells, never across acts, so each cell's float operations happen in
// the scalar oracle's exact order, and FMA contraction is forbidden —
// a fused multiply-add rounds once where the model rounds twice, so
// the assembly uses only individually-rounding VMULPD/VDIVPD/VADDPD.
// SolveView columns carry device.SolveLanes padding so full vector
// loads never touch unowned memory. FuzzDamageKernelParity pins every
// compiled-in kernel byte-identical to the scalar reference.
//
// The ground-truth engine (core.BankEngine, driving a simulated
// device.Bank command by command) fast-forwards over the event
// horizon by default: the access pattern is periodic, so a captured
// device.DamageProfile (per-cell, per-activation damage deltas —
// warm-up first iteration vs steady state) determines each victim
// cell's accumulator trajectory, which is repeated IEEE-754 addition
// of constants and can be reproduced bit for bit in closed form
// (constant mantissa increments within a float binade; boundaries,
// half-ulp ties and subnormals single-step). The engine solves for
// the earliest possible flip iteration, seeks the bank state there
// (device.Bank.SeekRowDisturb: exact accumulators, side bookkeeping,
// counters) and replays only a guard window act by act, so RowResults
// — and the victim row's microstate — are byte-identical to full
// act-by-act execution (pinned by grid and property-fuzz tests;
// core.WithExactReplay opts out). This takes a 60 ms characterization
// from ~19 ms to ~80 us of wall time and accelerates every
// bank-engine-backed cross-validation and calibration sweep. The
// closed-form stepper itself is vectorized in spirit if not in
// registers: the default build replays the per-binade delta
// decomposition as pure integer arithmetic on projected
// mantissa/exponent pairs (internal/core/bankbatch.go), bit-identical
// to the float reference (FuzzBankBatchParity), which remains the
// purego build's implementation.
//
// Benchmarks guard all of this: run
//
//	go test -run '^$' -bench . -benchmem .
//
// and record snapshots on the BENCH_*.json perf trajectory with
// cmd/benchjson (whose -gate mode is CI's bench-regression gate, with
// a -summary markdown diff for job summaries). Snapshots record the
// GOAMD64 level and detected CPU feature tier; the gate warns and
// skips its ns/op rule — rather than failing — when baseline and
// fresh snapshots were measured under different vector dispatch.
// cmd/characterize takes -cpuprofile/-memprofile to profile
// full-scale campaigns.
//
// See README.md for a quickstart and shard/resume examples. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.
package rowfuse
