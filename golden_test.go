package rowfuse_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rowfuse/internal/core"
	"rowfuse/internal/report"
	"rowfuse/internal/timing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenStudy runs a reduced but representative campaign: every module,
// all three patterns, the Table 2 tAggON marks, two dies and three runs,
// so the per-die scheduling, run-to-run noise and multi-die aggregation
// paths are all exercised.
func goldenStudy(t *testing.T) *core.Study {
	t.Helper()
	s := core.NewStudy(core.StudyConfig{
		Sweep:         timing.Table2Marks(),
		RowsPerRegion: 8,
		Dies:          2,
		Runs:          3,
	})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenRenderings pins the Table 2 and Fig 4 renderings byte for
// byte. The golden files were captured from the original (pre-refactor)
// sequential engine path; any optimization of the analytic hot path must
// reproduce them exactly. Regenerate deliberately with:
//
//	go test -run TestGoldenRenderings -update
func TestGoldenRenderings(t *testing.T) {
	s := goldenStudy(t)

	var table2 bytes.Buffer
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Table2(&table2, rows); err != nil {
		t.Fatal(err)
	}

	var fig4 bytes.Buffer
	data, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Fig4(&fig4, data); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got []byte) {
		t.Helper()
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from the golden rendering (-want +got):\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
		}
	}
	check("golden_table2.txt", table2.Bytes())
	check("golden_fig4.txt", fig4.Bytes())
}
