// Benchmarks that regenerate every table and figure of the paper's
// evaluation (reduced row samples; use cmd/characterize for full-scale
// runs) plus ablations of the model's design choices and
// micro-benchmarks of the substrates.
//
// Figure benchmarks report the paper's headline series as custom
// metrics, e.g. BenchmarkFig4TimeToFirstBitflip reports
// S_combined_636ns_ms alongside the usual ns/op.
package rowfuse_test

import (
	"context"
	"io"
	"testing"
	"time"

	"rowfuse/internal/benchscen"
	"rowfuse/internal/bender"
	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/mitigation"
	"rowfuse/internal/pattern"
	"rowfuse/internal/report"
	"rowfuse/internal/thermal"
	"rowfuse/internal/timing"
)

// benchStudy runs a reduced-scale study.
func benchStudy(b *testing.B, sweep []time.Duration, patterns []pattern.Kind) *core.Study {
	b.Helper()
	s := core.NewStudy(core.StudyConfig{
		Sweep:         sweep,
		Patterns:      patterns,
		RowsPerRegion: 12,
		Dies:          1,
		Runs:          1,
	})
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStudyCampaign is the headline end-to-end number: a reduced
// (module x pattern x tAggON) grid of the paper's campaign, with
// multiple dies and repeats so the per-die work units and the cached
// row populations both matter. The scenario lives in
// internal/benchscen; cmd/benchjson records the same workload in the
// BENCH_*.json perf trajectory.
func BenchmarkStudyCampaign(b *testing.B) {
	benchscen.StudyCampaign(b)
}

// --- Table and figure regeneration ---------------------------------------

func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table1(io.Discard, chipdb.Modules()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	var rows []core.Table2Row
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, timing.Table2Marks(), []pattern.Kind{pattern.DoubleSided, pattern.Combined})
		var err error
		rows, err = s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Table2(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Info.ID == "S0" {
			b.ReportMetric(r.Measured.RH.Avg, "S0_RH_ACmin")
			b.ReportMetric(r.Measured.C78.Avg, "S0_C78_ACmin")
			b.ReportMetric(r.Measured.C702.Avg, "S0_C702_ACmin")
		}
	}
}

// fig4Sweep is the shared reduced tAggON sweep (see internal/benchscen).
func fig4Sweep() []time.Duration {
	return benchscen.Fig4Sweep()
}

func fig4Point(b *testing.B, data core.Fig4Data, mfr chipdb.Manufacturer, k pattern.Kind, aggOn time.Duration) core.Fig4Point {
	b.Helper()
	for _, pt := range data[mfr][k] {
		if pt.AggOn == aggOn {
			return pt
		}
	}
	b.Fatalf("missing point %v/%v/%v", mfr, k, aggOn)
	return core.Fig4Point{}
}

func BenchmarkFig4TimeToFirstBitflip(b *testing.B) {
	var data core.Fig4Data
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, fig4Sweep(), nil)
		var err error
		data, err = s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Fig4(io.Discard, data); err != nil {
			b.Fatal(err)
		}
	}
	at636 := 636 * time.Nanosecond
	b.ReportMetric(fig4Point(b, data, chipdb.MfrS, pattern.Combined, at636).TimeMeanMs, "S_combined_636ns_ms")
	b.ReportMetric(fig4Point(b, data, chipdb.MfrS, pattern.DoubleSided, at636).TimeMeanMs, "S_double_636ns_ms")
	b.ReportMetric(fig4Point(b, data, chipdb.MfrS, pattern.SingleSided, at636).TimeMeanMs, "S_single_636ns_ms")
	b.ReportMetric(fig4Point(b, data, chipdb.MfrS, pattern.Combined, timing.AggOnNineTREFI).TimeMeanMs, "S_combined_70.2us_ms")
	b.ReportMetric(fig4Point(b, data, chipdb.MfrS, pattern.SingleSided, timing.AggOnNineTREFI).TimeMeanMs, "S_single_70.2us_ms")
}

func BenchmarkFig4ACmin(b *testing.B) {
	var data core.Fig4Data
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, fig4Sweep(), nil)
		var err error
		data, err = s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	at636 := 636 * time.Nanosecond
	codes := map[chipdb.Manufacturer]string{chipdb.MfrS: "S", chipdb.MfrH: "H", chipdb.MfrM: "M"}
	for _, mfr := range []chipdb.Manufacturer{chipdb.MfrS, chipdb.MfrH, chipdb.MfrM} {
		rh := fig4Point(b, data, mfr, pattern.DoubleSided, timing.TRAS).ACminMean
		comb := fig4Point(b, data, mfr, pattern.Combined, at636).ACminMean
		b.ReportMetric(rh, codes[mfr]+"_RH_ACmin")
		b.ReportMetric(100*(1-comb/rh), codes[mfr]+"_comb636_reduction_pct")
	}
}

func BenchmarkFig5Directionality(b *testing.B) {
	var data core.Fig5Data
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, fig4Sweep(), []pattern.Kind{pattern.Combined})
		var err error
		data, err = s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Fig5(io.Discard, data); err != nil {
			b.Fatal(err)
		}
	}
	sCurve := data[chipdb.MfrS]["8Gb C-Die"]
	mCurve := data[chipdb.MfrM]["16Gb E-Die"]
	b.ReportMetric(sCurve[0].OneToZeroFrac, "S_8GbC_frac_at_36ns")
	b.ReportMetric(sCurve[len(sCurve)-1].OneToZeroFrac, "S_8GbC_frac_at_300us")
	b.ReportMetric(mCurve[0].OneToZeroFrac, "M_16GbE_frac_at_36ns")
	b.ReportMetric(mCurve[len(mCurve)-1].OneToZeroFrac, "M_16GbE_frac_at_300us")
}

func benchFig6(b *testing.B) core.Fig6Data {
	b.Helper()
	var data core.Fig6Data
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, fig4Sweep(), nil)
		var err error
		data, err = s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Fig6(io.Discard, data); err != nil {
			b.Fatal(err)
		}
	}
	return data
}

func BenchmarkFig6OverlapSingleSided(b *testing.B) {
	data := benchFig6(b)
	curve := data[chipdb.MfrS]["8Gb D-Die"].VsSingle
	b.ReportMetric(curve[0].Overlap, "overlap_at_36ns")
	b.ReportMetric(curve[len(curve)-1].Overlap, "overlap_at_300us")
}

func BenchmarkFig6OverlapDoubleSided(b *testing.B) {
	data := benchFig6(b)
	curve := data[chipdb.MfrS]["8Gb D-Die"].VsDouble
	var dip float64 = 1
	for _, pt := range curve {
		if pt.ConvFlips > 0 && pt.Overlap < dip {
			dip = pt.Overlap
		}
	}
	b.ReportMetric(curve[0].Overlap, "overlap_at_36ns")
	b.ReportMetric(dip, "overlap_dip")
	b.ReportMetric(curve[len(curve)-1].Overlap, "overlap_at_300us")
}

// --- Ablations (DESIGN.md design choices) --------------------------------

// ablationACminRatio measures the combined/double ACmin ratio at 70.2us
// under a given weak-side coupling.
func ablationACminRatio(b *testing.B, coupling float64) float64 {
	b.Helper()
	mi, err := chipdb.ByID("S0")
	if err != nil {
		b.Fatal(err)
	}
	params := device.DefaultParams()
	profile := mi.Profile(params)
	profile.WeakSideCoupling = coupling
	e, err := core.NewAnalyticEngine(core.AnalyticConfig{Profile: profile, Params: params, NumRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	mk := func(k pattern.Kind) pattern.Spec {
		s, err := pattern.New(k, timing.AggOnNineTREFI, timing.Default())
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	var sumC, sumD float64
	for victim := 100; victim < 140; victim++ {
		rc, err := e.CharacterizeRow(victim, mk(pattern.Combined), core.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
		rd, err := e.CharacterizeRow(victim, mk(pattern.DoubleSided), core.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if rc.NoBitflip || rd.NoBitflip {
			continue
		}
		sumC += float64(rc.ACmin)
		sumD += float64(rd.ACmin)
	}
	return sumC / sumD
}

// BenchmarkAblationSideCoupling quantifies Hypothesis 1: the combined
// pattern's cost vs double-sided RowPress as a function of the weak-side
// press coupling.
func BenchmarkAblationSideCoupling(b *testing.B) {
	var sym, asym float64
	for i := 0; i < b.N; i++ {
		sym = ablationACminRatio(b, 1.0)
		asym = ablationACminRatio(b, 0.1)
	}
	b.ReportMetric(sym, "ratio_symmetric")
	b.ReportMetric(asym, "ratio_asymmetric")
}

// BenchmarkAblationSynergy quantifies the double-sided hammer synergy:
// the single/double RowHammer ACmin ratio with and without it.
func BenchmarkAblationSynergy(b *testing.B) {
	mi, err := chipdb.ByID("S0")
	if err != nil {
		b.Fatal(err)
	}
	ratio := func(synergy float64) float64 {
		params := device.DefaultParams()
		params.Synergy = synergy
		e, err := core.NewAnalyticEngine(core.AnalyticConfig{Profile: mi.Profile(params), Params: params, NumRows: 8192})
		if err != nil {
			b.Fatal(err)
		}
		spec := func(k pattern.Kind) pattern.Spec {
			s, err := pattern.New(k, timing.TRAS, timing.Default())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}
		var sumS, sumD float64
		for victim := 100; victim < 130; victim++ {
			rs, err := e.CharacterizeRow(victim, spec(pattern.SingleSided), core.RunOpts{Budget: 200 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			rd, err := e.CharacterizeRow(victim, spec(pattern.DoubleSided), core.RunOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if rs.NoBitflip || rd.NoBitflip {
				continue
			}
			sumS += float64(rs.ACmin)
			sumD += float64(rd.ACmin)
		}
		return sumS / sumD
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ratio(3.5)
		without = ratio(1.0)
	}
	b.ReportMetric(with, "single_over_double_with_synergy")
	b.ReportMetric(without, "single_over_double_no_synergy")
}

// BenchmarkAblationInterleavePenalty quantifies Observation 3's 3-4%
// combined-vs-single time penalty against the interleave term.
func BenchmarkAblationInterleavePenalty(b *testing.B) {
	mi, err := chipdb.ByID("S0")
	if err != nil {
		b.Fatal(err)
	}
	timeRatio := func(delta float64) float64 {
		params := device.DefaultParams()
		params.InterleavePenalty = delta
		e, err := core.NewAnalyticEngine(core.AnalyticConfig{Profile: mi.Profile(params), Params: params, NumRows: 8192})
		if err != nil {
			b.Fatal(err)
		}
		spec := func(k pattern.Kind) pattern.Spec {
			s, err := pattern.New(k, timing.AggOnNineTREFI, timing.Default())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}
		var sumC, sumS float64
		for victim := 100; victim < 130; victim++ {
			rc, err := e.CharacterizeRow(victim, spec(pattern.Combined), core.RunOpts{})
			if err != nil {
				b.Fatal(err)
			}
			rs, err := e.CharacterizeRow(victim, spec(pattern.SingleSided), core.RunOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if rc.NoBitflip || rs.NoBitflip {
				continue
			}
			sumC += rc.TimeToFirst.Seconds()
			sumS += rs.TimeToFirst.Seconds()
		}
		return sumC / sumS
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = timeRatio(device.DefaultParams().InterleavePenalty)
		without = timeRatio(0)
	}
	b.ReportMetric(100*(with-1), "penalty_default_pct")
	b.ReportMetric(100*(without-1), "penalty_zero_pct")
}

// --- Substrate micro-benchmarks ------------------------------------------

func benchProfile() device.Profile {
	return benchscen.Profile()
}

func BenchmarkDeviceActPre(b *testing.B) {
	bank, err := device.NewBank(device.BankConfig{
		Profile: benchProfile(),
		Params:  device.DefaultParams(),
		NumRows: 65536,
	})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bank.Activate(1000, now); err != nil {
			b.Fatal(err)
		}
		now += timing.TRAS
		if err := bank.Precharge(now); err != nil {
			b.Fatal(err)
		}
		now += timing.TRP
	}
}

func BenchmarkGenerateRowCells(b *testing.B) {
	benchscen.GenerateRowCells(b)
}

// BenchmarkBankEngineCharacterizeRow guards the ground-truth path in
// its default event-horizon fast-forward mode: the engine captures a
// damage profile, solves each cell's bit-exact flip iteration in closed
// form, seeks the bank there and replays only a small guard window act
// by act (BENCH_4 -> BENCH_5 took this from ~19 ms/op to ~79 us/op on
// one core). The remaining cell-count sensitivity (compare the
// DenseCells variant) is the per-cell profile capture and horizon
// solve, both linear in the population.
func BenchmarkBankEngineCharacterizeRow(b *testing.B) {
	benchscen.BankEngineCharacterizeRow(b, 24)
}

func BenchmarkBankEngineCharacterizeRowDenseCells(b *testing.B) {
	benchscen.BankEngineCharacterizeRow(b, 192)
}

func BenchmarkAnalyticCharacterizeRow(b *testing.B) {
	benchscen.AnalyticCharacterizeRow(b)
}

// BenchmarkSolveBatch measures the batched first-flip kernel over warm
// solver views — the campaign's per-cell steady state. Guarded at 0
// allocs/op by the bench-regression gate.
func BenchmarkSolveBatch(b *testing.B) {
	benchscen.SolveBatch(b)
}

// BenchmarkAnalyticCharacterizeRowCachedRuns measures the campaign's
// actual access shape: the same row revisited across run-noise repeats,
// where the cached base population and reused result buffer make the
// steady state allocation-free (guarded by
// TestCharacterizeRowSteadyStateAllocs).
func BenchmarkAnalyticCharacterizeRowCachedRuns(b *testing.B) {
	benchscen.AnalyticCharacterizeRowCachedRuns(b)
}

// BenchmarkBenderTraceFastForward measures the bender-trace scenario
// engine in its default event-horizon mode: only a guard window and
// the readback epilogue are interpreted; everything before the
// earliest possible flip is solved in closed form and skipped. The
// NaiveReplay variant interprets every activation — BENCH_8.json pins
// the fast path at >= 10x over it, and the bench-regression gate's
// alloc guard pins the fast path's allocation count.
func BenchmarkBenderTraceFastForward(b *testing.B) {
	benchscen.BenderTraceFastForward(b)
}

func BenchmarkBenderTraceNaiveReplay(b *testing.B) {
	benchscen.BenderTraceNaiveReplay(b)
}

// BenchmarkFleetFold measures fleet-campaign throughput with one op
// per chip: generate a synthetic chip from the population model,
// characterize it, and stream it through the per-group quantile-sketch
// fold (see internal/benchscen). Reports chips/sec; the gate's alloc
// guard pins the flat per-chip allocation count.
func BenchmarkFleetFold(b *testing.B) {
	benchscen.FleetFold(b)
}

// BenchmarkMitigationCampaign runs the mitigation scenario axis end to
// end: one module x one pattern re-characterized under each defense of
// core.MitigationScenarios on a guarded simulated bank, folded into
// the survival summary.
func BenchmarkMitigationCampaign(b *testing.B) {
	benchscen.MitigationCampaign(b)
}

// BenchmarkWALQueueGrantSubmit measures the campaign service's durable
// dispatch hot path: a journaled-and-fsynced lease grant plus submit
// per op (see internal/benchscen). The bench-regression gate's alloc
// guard pins its allocation count.
func BenchmarkWALQueueGrantSubmit(b *testing.B) {
	benchscen.WALQueueGrantSubmit(b)
}

func BenchmarkBenderInterpreter(b *testing.B) {
	chip, err := device.NewChip(device.ChipConfig{
		Profile: benchProfile(),
		Params:  device.DefaultParams(),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := bender.NewEngine(bender.EngineConfig{Chip: chip})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := pattern.New(pattern.DoubleSided, timing.TRAS, timing.Default())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bender.CompilePattern(spec, 0, 1000, 100, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		if err := eng.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemble(b *testing.B) {
	src := `
SET r0 5000
loop:
ACT 0 100
WAIT 36
PRE 0
WAIT 15
ACT 0 102
WAIT 36
PRE 0
WAIT 15
DJNZ r0 loop
END
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bender.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECCEncodeDecode(b *testing.B) {
	data := []byte{0x55, 0xAA, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC}
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		check, err := mitigation.EncodeWord(data)
		if err != nil {
			b.Fatal(err)
		}
		copy(buf, data)
		buf[0] ^= 1
		if _, err := mitigation.DecodeWord(buf, check); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisraGriesObserve(b *testing.B) {
	m := mitigation.NewMisraGries(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(i % 1024)
	}
}

func BenchmarkThermalControlTick(b *testing.B) {
	plant := thermal.NewPlant(25)
	ctrl, err := thermal.NewController(thermal.ControllerConfig{Plant: plant, Setpoint: 50})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Run(100 * time.Millisecond)
	}
}
