package rowfuse_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/dispatch"
	_ "rowfuse/internal/mitigation" // registers the "mitigated" scenario engine
	"rowfuse/internal/pattern"
	"rowfuse/internal/report"
	"rowfuse/internal/resultio"
)

// mixedScenarioConfig is a small campaign that exercises every engine
// family on the scenario axis at once: the default analytic scenario,
// the command-level bank simulator, the cycle-accurate bender trace
// interpreter, a TRR-guarded mitigation cell and a temperature
// override. One module, one tAggON, three patterns — 15 cells.
func mixedScenarioConfig(t *testing.T) core.StudyConfig {
	t.Helper()
	mi, err := chipdb.ByID("S0")
	if err != nil {
		t.Fatal(err)
	}
	return core.StudyConfig{
		Modules:       []chipdb.ModuleInfo{mi},
		Sweep:         []time.Duration{7800 * time.Nanosecond},
		RowsPerRegion: 2,
		Dies:          1,
		Runs:          1,
		Opts:          core.RunOpts{Budget: 2 * time.Millisecond},
		Scenarios: []core.Scenario{
			{},
			{ID: "bank", Engine: core.EngineBank},
			{ID: "bender", Engine: core.EngineBenderTrace},
			{ID: "trr4", Engine: core.EngineMitigated, Mitigation: &core.MitigationSpec{TRRCounters: 4, RefreshMult: 1}},
			{ID: "hot", TempC: 70},
		},
	}
}

// checkpointBytes serializes a study snapshot the way shard runs do.
func checkpointBytes(t *testing.T, cfg core.StudyConfig, s *core.Study) []byte {
	t.Helper()
	cp := resultio.NewCheckpoint(cfg.Fingerprint(), core.ShardPlan{}, s.Snapshot())
	var buf bytes.Buffer
	if err := resultio.SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScenarioMixedShardMergeIdentical shards a mixed-scenario campaign
// the way characterize -shard/-merge does and requires the fused result
// to be byte-identical to the unsharded run: same aggregate snapshot,
// same checkpoint file, same primary-scenario Table 2 rendering.
func TestScenarioMixedShardMergeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) campaign twice")
	}
	cfg := mixedScenarioConfig(t)
	single := core.NewStudy(cfg)
	if err := single.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSnap := single.Snapshot()
	wantBytes := checkpointBytes(t, cfg, single)

	dir := t.TempDir()
	fingerprint := cfg.Fingerprint()
	const n = 3
	var paths []string
	for i := 0; i < n; i++ {
		shardCfg := mixedScenarioConfig(t)
		shardCfg.Shard = core.ShardPlan{Index: i, Count: n}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		plan := shardCfg.Shard
		shardCfg.Checkpoint = func(cells map[core.CellKey]core.AggregateState) error {
			return resultio.WriteCheckpointFile(path, resultio.NewCheckpoint(fingerprint, plan, cells))
		}
		if err := core.NewStudy(shardCfg).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	merged, err := resultio.MergeCheckpointFiles(fingerprint, paths...)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := merged.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	fused := core.NewStudy(mixedScenarioConfig(t))
	if err := fused.Seed(cells); err != nil {
		t.Fatal(err)
	}
	if got := fused.Snapshot(); !reflect.DeepEqual(got, wantSnap) {
		t.Fatal("sharded+merged snapshot differs from the unsharded run")
	}
	if got := checkpointBytes(t, cfg, fused); !bytes.Equal(got, wantBytes) {
		t.Fatalf("fused checkpoint differs from the unsharded run:\n--- fused ---\n%s\n--- single ---\n%s", got, wantBytes)
	}

	// Every scenario's cells must actually be present and carry
	// observations — a dropped scenario would merge "cleanly" into a
	// smaller grid.
	perScenario := make(map[string]int)
	for key := range cells {
		perScenario[key.Scenario]++
	}
	for _, sc := range cfg.Scenarios {
		if perScenario[sc.ID] != 3 {
			t.Fatalf("scenario %q has %d cells, want 3 (per-scenario coverage: %v)", sc.ID, perScenario[sc.ID], perScenario)
		}
	}
}

// TestScenarioDispatchWorkerKillResume drives a mixed-scenario campaign
// through the dispatch stack: a campaignd-style directory queue whose
// manifest round-trips the scenario axis, one worker that dies holding
// a lease, and live workers that steal the unit back. The fused
// checkpoint must match an unsharded Study.Run byte for byte, and the
// per-scenario summary rendering must be deterministic.
func TestScenarioDispatchWorkerKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a distributed (small) campaign")
	}
	cfg := mixedScenarioConfig(t)
	single := core.NewStudy(cfg)
	if err := single.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantBytes := checkpointBytes(t, cfg, single)
	var wantTable bytes.Buffer
	rows, err := single.MitigationSummary()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.MitigationTable(&wantTable, rows); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const units = 4
	m := dispatch.NewManifest(cfg, units, 400*time.Millisecond)
	if m.GridSize() != 15 {
		t.Fatalf("manifest grid size %d, want 15 (scenario axis lost on the wire?)", m.GridSize())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := dispatch.InitDir(dir, m); err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases a unit and crashes: no heartbeat, no
	// submit. Its lease must expire and the unit be re-granted.
	doomed, err := dispatch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Acquire("doomed"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted int
		firstErr  error
	)
	for w := 0; w < 2; w++ {
		name := []string{"alpha", "beta"}[w]
		wq, err := dispatch.OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := dispatch.Work(ctx, wq, dispatch.WorkerOptions{Name: name, Log: t.Logf})
			mu.Lock()
			defer mu.Unlock()
			submitted += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if submitted != units {
		t.Fatalf("live workers submitted %d units, want all %d (incl. the dead worker's re-granted unit)", submitted, units)
	}

	coord, err := dispatch.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := coord.Merged()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cp.CellMap()
	if err != nil {
		t.Fatal(err)
	}
	fused := core.NewStudy(mixedScenarioConfig(t))
	if err := fused.Seed(cells); err != nil {
		t.Fatal(err)
	}
	if got := checkpointBytes(t, cfg, fused); !bytes.Equal(got, wantBytes) {
		t.Fatal("dispatched campaign checkpoint differs from the unsharded run")
	}
	var gotTable bytes.Buffer
	rows, err = fused.MitigationSummary()
	if err != nil {
		t.Fatal(err)
	}
	if err := report.MitigationTable(&gotTable, rows); err != nil {
		t.Fatal(err)
	}
	if gotTable.String() != wantTable.String() {
		t.Fatalf("dispatched scenario table differs:\n--- dispatched ---\n%s\n--- single ---\n%s", gotTable.String(), wantTable.String())
	}
}

// TestScenarioMitigationCampaignReports runs a tiny mitigation-axis
// campaign end to end and renders the mitigation survival table — the
// -exp mitigation pipeline without the CLI around it. The baseline
// scenario must flip at least as often as every defended scenario.
func TestScenarioMitigationCampaignReports(t *testing.T) {
	if testing.Short() {
		t.Skip("hammers a simulated bank per scenario")
	}
	cfg, err := core.NewCampaignSpecBuilder(
		core.WithExp("mitigation"),
		core.WithModule("S0"),
		core.WithScale(2, 1, 1),
		core.WithOperatingPoint(50, 2*time.Millisecond),
	).StudyConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Narrow to one mark and one pattern so six scenarios stay quick.
	cfg.Sweep = cfg.Sweep[:1]
	cfg.Patterns = []pattern.Kind{pattern.DoubleSided}
	s := core.NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sum, err := s.MitigationSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != len(core.MitigationScenarios()) {
		t.Fatalf("summary has %d scenarios, want %d", len(sum), len(core.MitigationScenarios()))
	}
	baseline := sum[0]
	if baseline.Scenario.ID != "baseline" {
		t.Fatalf("first summary row is %q, want the baseline", baseline.Scenario.ID)
	}
	for _, row := range sum[1:] {
		if row.Modules[0].FlippedObs > baseline.Modules[0].FlippedObs {
			t.Errorf("scenario %q flips more than the unprotected baseline (%d > %d)",
				row.Scenario.ID, row.Modules[0].FlippedObs, baseline.Modules[0].FlippedObs)
		}
	}
	var buf bytes.Buffer
	if err := report.MitigationTable(&buf, sum); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty mitigation table")
	}

	// Rendering must be deterministic across re-runs of the same config.
	s2 := core.NewStudy(cfg)
	if err := s2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sum2, err := s2.MitigationSummary()
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := report.MitigationTable(&buf2, sum2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("mitigation table not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", buf.String(), buf2.String())
	}
}

// TestScenarioCrossoverExtractor runs a default-scenario sweep and
// checks the crossover extractor agrees with the per-cell winners.
func TestScenarioCrossoverExtractor(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-point sweep")
	}
	cfg, err := core.NewCampaignSpecBuilder(
		core.WithExp("crossover"),
		core.WithModule("S0"),
		core.WithScale(4, 1, 1),
	).StudyConfig()
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStudy(cfg)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mods, err := s.CrossoverSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || len(mods[0].Cells) != len(cfg.Sweep) {
		t.Fatalf("sweep shape: %d modules, %d cells", len(mods), len(mods[0].Cells))
	}
	for _, c := range mods[0].Cells {
		if c.Winner == 0 {
			continue
		}
		for k, ms := range c.TimesMs {
			if ms < c.TimesMs[c.Winner] {
				t.Fatalf("at %v, %v (%.2fms) beats declared winner %v (%.2fms)",
					c.AggOn, k, ms, c.Winner, c.TimesMs[c.Winner])
			}
		}
	}
	var buf bytes.Buffer
	if err := report.CrossoverTable(&buf, mods); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty crossover table")
	}
}
