// combined_attack sweeps the aggressor-row on-time (tAggON) on one
// simulated module and prints how fast each access pattern induces the
// first bitflip — a single-module slice of the paper's Fig. 4 that shows
// the combined pattern's advantage at small-to-medium tAggON
// (Observation 1) and its convergence to single-sided RowPress at large
// tAggON (Observation 3).
//
// It is a thin wrapper over the crossover campaign grid: build the
// sweep with core.NewCampaignSpecBuilder, run it as a Study, and render
// the per-cell winners with report.CrossoverTable. The same campaign is
// available from the CLI as `characterize -exp crossover`.
//
// Run with:
//
//	go run ./examples/combined_attack [module]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"rowfuse/internal/core"
	"rowfuse/internal/report"
)

func main() {
	moduleID := "S1"
	if len(os.Args) > 1 {
		moduleID = os.Args[1]
	}
	if err := run(moduleID); err != nil {
		log.Fatal(err)
	}
}

func run(moduleID string) error {
	cfg, err := core.NewCampaignSpecBuilder(
		core.WithExp("crossover"),
		core.WithModule(moduleID),
		core.WithScale(50, 1, 1),
	).StudyConfig()
	if err != nil {
		return err
	}
	study := core.NewStudy(cfg)
	if err := study.Run(context.Background()); err != nil {
		return err
	}
	mods, err := study.CrossoverSweep()
	if err != nil {
		return err
	}
	fmt.Printf("time to first bitflip per tAggON, %d victim rows per cell:\n\n", cfg.RowsPerRegion)
	return report.CrossoverTable(os.Stdout, mods)
}
