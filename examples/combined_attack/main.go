// combined_attack sweeps the aggressor-row on-time (tAggON) on one
// simulated module and prints how fast each access pattern induces the
// first bitflip — a single-module slice of the paper's Fig. 4 that shows
// the combined pattern's advantage at small-to-medium tAggON
// (Observation 1) and its convergence to single-sided RowPress at large
// tAggON (Observation 3).
//
// Run with:
//
//	go run ./examples/combined_attack [module]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	moduleID := "S1"
	if len(os.Args) > 1 {
		moduleID = os.Args[1]
	}
	if err := run(moduleID); err != nil {
		log.Fatal(err)
	}
}

func run(moduleID string) error {
	mi, err := chipdb.ByID(moduleID)
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	numRows, rowBytes := mi.Geometry()
	eng, err := core.NewAnalyticEngine(core.AnalyticConfig{
		Profile:  mi.Profile(params),
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		return err
	}

	rows := core.PaperRows(numRows, 50)
	fmt.Printf("module %s (%s), %d victim rows, time to first bitflip (ms):\n\n", mi.ID, mi.Mfr, len(rows))
	fmt.Printf("%-10s %12s %12s %12s %14s\n", "tAggON", "combined", "double RP", "single RP", "winner")

	for _, aggOn := range timing.PaperSweep() {
		times := make(map[pattern.Kind]float64, 3)
		for _, kind := range []pattern.Kind{pattern.Combined, pattern.DoubleSided, pattern.SingleSided} {
			spec, err := pattern.New(kind, aggOn, timing.Default())
			if err != nil {
				return err
			}
			sum, n := 0.0, 0
			for _, victim := range rows {
				res, err := eng.CharacterizeRow(victim, spec, core.RunOpts{})
				if err != nil {
					return err
				}
				if !res.NoBitflip {
					sum += res.TimeToFirst.Seconds() * 1000
					n++
				}
			}
			if n > 0 {
				times[kind] = sum / float64(n)
			}
		}
		fmt.Printf("%-10s %12s %12s %12s %14s\n",
			fmtAgg(aggOn), fmtMs(times[pattern.Combined]), fmtMs(times[pattern.DoubleSided]),
			fmtMs(times[pattern.SingleSided]), winner(times))
	}
	return nil
}

func fmtAgg(d time.Duration) string {
	if d < time.Microsecond {
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}

func fmtMs(v float64) string {
	if v == 0 {
		return "no flip"
	}
	return fmt.Sprintf("%.2f", v)
}

func winner(times map[pattern.Kind]float64) string {
	best := pattern.Kind(0)
	bestT := 0.0
	for k, t := range times {
		if t > 0 && (best == 0 || t < bestT) {
			best, bestT = k, t
		}
	}
	if best == 0 {
		return "-"
	}
	return best.Short()
}
