// Quickstart: characterize one victim row of a simulated Samsung DDR4
// module with the paper's three access patterns, driving the DRAM device
// command by command.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Pick a module from the paper's Table 1 inventory and build the
	// simulated device for it.
	mi, err := chipdb.ByID("S0")
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	numRows, rowBytes := mi.Geometry()
	bank, err := device.NewBank(device.BankConfig{
		Profile:  mi.Profile(params),
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		return err
	}

	fmt.Printf("module %s: %s %s (%dGb %s-die)\n\n",
		mi.ID, mi.Mfr.Name(), mi.DRAMPart, mi.DensityGbit, mi.DieRev)

	// Characterize one victim row with each pattern at tAggON = 636 ns,
	// the paper's headline operating point (Observation 1).
	eng := core.NewBankEngine(bank)
	const victim = 5000
	aggOn := 636 * time.Nanosecond
	for _, kind := range []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined} {
		spec, err := pattern.New(kind, aggOn, timing.Default())
		if err != nil {
			return err
		}
		res, err := eng.CharacterizeRow(victim, spec, core.RunOpts{})
		if err != nil {
			return err
		}
		if res.NoBitflip {
			fmt.Printf("%-24s no bitflip within the 60 ms budget\n", spec.Kind)
			continue
		}
		fmt.Printf("%-24s ACmin=%6d acts   first flip after %8v   flips: %v\n",
			spec.Kind, res.ACmin, res.TimeToFirst.Round(time.Microsecond), res.Flips)
	}

	// The same measurement at tAggON = tRAS degenerates to conventional
	// double-sided RowHammer.
	spec, err := pattern.New(pattern.Combined, timing.TRAS, timing.Default())
	if err != nil {
		return err
	}
	res, err := eng.CharacterizeRow(victim, spec, core.RunOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("\nat tAggON = tRAS the combined pattern IS double-sided RowHammer: ACmin=%d (paper: ~45K avg)\n", res.ACmin)
	return nil
}
