// overlap_analysis compares WHICH bits flip under the combined pattern
// versus the conventional patterns on one module (the paper's Fig. 6 and
// Takeaway 2): at tAggON = tRAS the combined and double-sided patterns
// are identical (overlap 1.0); at intermediate on-times the patterns
// flip different cells; at large on-times both converge on the same
// press-vulnerable cells.
//
// Run with:
//
//	go run ./examples/overlap_analysis [module]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	moduleID := "H0"
	if len(os.Args) > 1 {
		moduleID = os.Args[1]
	}
	if err := run(moduleID); err != nil {
		log.Fatal(err)
	}
}

func run(moduleID string) error {
	mi, err := chipdb.ByID(moduleID)
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	numRows, rowBytes := mi.Geometry()
	eng, err := core.NewAnalyticEngine(core.AnalyticConfig{
		Profile:  mi.Profile(params),
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		return err
	}

	rows := core.PaperRows(numRows, 120)
	fmt.Printf("module %s (%s): bitflip-set overlap of the combined pattern with the conventional patterns\n\n", mi.ID, mi.Mfr)
	fmt.Printf("%-10s %12s %12s %16s\n", "tAggON", "vs single", "vs double", "1->0 fraction")

	flipSet := func(kind pattern.Kind, aggOn time.Duration) (map[uint64]bool, int, float64, error) {
		spec, err := pattern.New(kind, aggOn, timing.Default())
		if err != nil {
			return nil, 0, 0, err
		}
		set := make(map[uint64]bool)
		oneToZero, total := 0, 0
		for _, victim := range rows {
			res, err := eng.CharacterizeRow(victim, spec, core.RunOpts{})
			if err != nil {
				return nil, 0, 0, err
			}
			for _, f := range res.Flips {
				set[f.Key()] = true
				total++
				if f.Dir == device.OneToZero {
					oneToZero++
				}
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(oneToZero) / float64(total)
		}
		return set, total, frac, nil
	}

	for _, aggOn := range timing.PaperSweep() {
		comb, _, frac, err := flipSet(pattern.Combined, aggOn)
		if err != nil {
			return err
		}
		single, _, _, err := flipSet(pattern.SingleSided, aggOn)
		if err != nil {
			return err
		}
		double, _, _, err := flipSet(pattern.DoubleSided, aggOn)
		if err != nil {
			return err
		}
		fmt.Printf("%-10v %12s %12s %16.2f\n",
			aggOn, overlap(comb, single), overlap(comb, double), frac)
	}
	return nil
}

// overlap renders |a ∩ b| / |b|, the paper's overlap definition.
func overlap(a, b map[uint64]bool) string {
	if len(b) == 0 {
		return "no flips"
	}
	inter := 0
	for k := range b {
		if a[k] {
			inter++
		}
	}
	return fmt.Sprintf("%.2f", float64(inter)/float64(len(b)))
}
