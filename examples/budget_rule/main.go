// budget_rule demonstrates why the paper caps every characterization
// experiment at 60 ms (strictly below tREFW = 64 ms): running longer
// without refresh lets retention failures creep into the measurement and
// masquerade as read-disturbance bitflips. The simulated device models
// both effects separately, so the contamination is directly visible.
//
// Run with:
//
//	go run ./examples/budget_rule
package main

import (
	"fmt"
	"log"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// M1 is RowPress-immune: under the paper's methodology its press
	// cells never flip, making retention contamination easy to spot.
	mi, err := chipdb.ByID("M1")
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	bank, err := device.NewBank(device.BankConfig{
		Profile: mi.Profile(params),
		Params:  params,
		NumRows: 8192,
	})
	if err != nil {
		return err
	}
	eng := core.NewBankEngine(bank)
	spec, err := pattern.New(pattern.Combined, timing.AggOnNineTREFI, timing.Default())
	if err != nil {
		return err
	}

	fmt.Printf("module %s (%s, RowPress-immune), combined pattern @ 70.2us\n\n", mi.ID, mi.Mfr)
	fmt.Printf("%-12s %-12s %s\n", "budget", "result", "flip mechanisms")
	for _, budget := range []time.Duration{
		30 * time.Millisecond,
		core.DefaultBudget, // the paper's 60 ms rule
		150 * time.Millisecond,
		400 * time.Millisecond,
	} {
		res, err := eng.CharacterizeRow(4000, spec, core.RunOpts{Budget: budget})
		if err != nil {
			return err
		}
		if res.NoBitflip {
			fmt.Printf("%-12v %-12s -\n", budget, "no bitflip")
			continue
		}
		mechs := map[device.Mechanism]int{}
		for _, f := range res.Flips {
			mechs[f.Mech]++
		}
		fmt.Printf("%-12v %-12s %v  (first flip at %v)\n",
			budget, "FLIPS", mechs, res.TimeToFirst.Round(time.Millisecond))
	}
	fmt.Println("\nbudgets past tREFW (64ms) report flips — but they are retention failures,")
	fmt.Println("not read disturbance. The 60ms rule keeps the measurement clean.")
	return nil
}
