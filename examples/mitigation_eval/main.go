// mitigation_eval evaluates existing read-disturbance defenses against
// the paper's access patterns (the paper's future-work item 3):
//
//  1. It shows why the characterization methodology disables periodic
//     refresh: a counter-based TRR mechanism neutralizes plain
//     double-sided RowHammer.
//  2. It evaluates TRR against the combined RowHammer+RowPress pattern
//     across tAggON values — fewer activations per unit damage make the
//     aggressors harder for activation-counting trackers to rank.
//  3. It quantifies how much rank-level SEC-DED ECC would mask.
//
// Run with:
//
//	go run ./examples/mitigation_eval
package main

import (
	"fmt"
	"log"
	"time"

	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/mitigation"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mi, err := chipdb.ByID("S1")
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	numRows, rowBytes := mi.Geometry()

	newBank := func() (*device.Bank, error) {
		return device.NewBank(device.BankConfig{
			Profile:  mi.Profile(params),
			Params:   params,
			NumRows:  numRows,
			RowBytes: rowBytes,
		})
	}

	fmt.Printf("module %s (%s): mitigation evaluation, victim row 4096\n\n", mi.ID, mi.Mfr)
	fmt.Printf("%-22s %-10s %-28s %s\n", "pattern", "tAggON", "no mitigation", "TRR (16 counters, REF@tREFI)")

	const victim = 4096
	cases := []struct {
		kind  pattern.Kind
		aggOn time.Duration
	}{
		{pattern.DoubleSided, timing.TRAS},
		{pattern.Combined, 636 * time.Nanosecond},
		{pattern.Combined, timing.AggOnTREFI},
		{pattern.Combined, timing.AggOnNineTREFI},
	}
	for _, c := range cases {
		spec, err := pattern.New(c.kind, c.aggOn, timing.Default())
		if err != nil {
			return err
		}

		// Baseline: refresh disabled (the paper's methodology).
		bank, err := newBank()
		if err != nil {
			return err
		}
		base, err := mitigation.Run(mitigation.EvalConfig{
			Bank: bank, Spec: spec, Victim: victim,
		})
		if err != nil {
			return err
		}

		// Protected: TRR sampling on top of regular tREFI refresh.
		bank2, err := newBank()
		if err != nil {
			return err
		}
		guard, err := mitigation.NewGuard(mitigation.GuardConfig{
			Bank:    bank2,
			Tracker: mitigation.NewMisraGries(16),
		})
		if err != nil {
			return err
		}
		prot, err := mitigation.Run(mitigation.EvalConfig{
			Bank: bank2, Spec: spec, Victim: victim,
			Guard: guard, RefInterval: timing.TREFI,
		})
		if err != nil {
			return err
		}

		fmt.Printf("%-22s %-10v %-28s %s\n",
			spec.Kind, c.aggOn, describe(base), describe(prot))
	}

	// ECC masking: take the unprotected flips of a long experiment and
	// run them through rank-level SEC-DED.
	bank, err := newBank()
	if err != nil {
		return err
	}
	spec, err := pattern.New(pattern.Combined, 636*time.Nanosecond, timing.Default())
	if err != nil {
		return err
	}
	if _, err := mitigation.Run(mitigation.EvalConfig{Bank: bank, Spec: spec, Victim: victim}); err != nil {
		return err
	}
	observed, err := bank.RowData(victim, 0)
	if err != nil {
		return err
	}
	golden := device.FillRow(rowBytes, device.Checkerboard.VictimByte())
	ecc, err := mitigation.EvaluateRow(golden, observed)
	if err != nil {
		return err
	}
	fmt.Printf("\nrank SEC-DED ECC on the victim row after the combined attack:\n")
	fmt.Printf("  %d words: %d clean, %d corrected, %d uncorrectable, %d residual errors\n",
		ecc.Words, ecc.Clean, ecc.Corrected, ecc.Detected, ecc.ResidualErr)

	// Refresh-rate scaling: how much faster than tREFW must the victim
	// be refreshed to be safe against each pattern?
	numRows2, rowBytes2 := mi.Geometry()
	eng, err := core.NewAnalyticEngine(core.AnalyticConfig{
		Profile:  mi.Profile(params),
		Params:   params,
		NumRows:  numRows2,
		RowBytes: rowBytes2,
	})
	if err != nil {
		return err
	}
	sample := core.PaperRows(numRows2, 40)
	var specs []pattern.Spec
	for _, kind := range []pattern.Kind{pattern.SingleSided, pattern.DoubleSided, pattern.Combined} {
		s, err := pattern.New(kind, 636*time.Nanosecond, timing.Default())
		if err != nil {
			return err
		}
		specs = append(specs, s)
	}
	scalings, err := mitigation.CompareRefreshScaling(eng, specs, sample, core.RunOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("\nrefresh-rate scaling needed to protect the sampled rows (tAggON = 636ns):\n")
	for _, s := range scalings {
		fmt.Printf("  %-24s fastest flip %8v  -> refresh window must shrink %.0fx below tREFW\n",
			s.Spec.Kind, s.MinTimeToFlip.Round(time.Microsecond), s.Factor)
	}
	fmt.Println("\n(The paper's infrastructure disables REF and ECC precisely because they mask circuit-level flips.)")
	return nil
}

func describe(r mitigation.EvalResult) string {
	if !r.Flipped {
		return fmt.Sprintf("protected (%d acts)", r.TotalActs)
	}
	return fmt.Sprintf("flips at %v (%d acts)", r.FirstFlipAt.Round(time.Microsecond), r.TotalActs)
}
