// mitigation_eval evaluates existing read-disturbance defenses against
// the paper's access patterns (the paper's future-work item 3) by
// running the mitigation scenario grid: every cell re-runs the same
// module × pattern × tAggON sweep under a different defense — no
// defense, counter-based TRR at two tracker sizes, doubled refresh
// rate, rank-level SEC-DED ECC, and TRR+ECC stacked.
//
// It is a thin wrapper over the campaign spec builder: the identical
// grid is available from the CLI as `characterize -exp mitigation` (or
// any other -exp with `-scenarios mitigations`), where it also shards
// and checkpoints like every other campaign.
//
// Run with:
//
//	go run ./examples/mitigation_eval [module]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rowfuse/internal/core"
	_ "rowfuse/internal/mitigation" // registers the "mitigated" scenario engine
	"rowfuse/internal/report"
)

func main() {
	moduleID := "S1"
	if len(os.Args) > 1 {
		moduleID = os.Args[1]
	}
	if err := run(moduleID); err != nil {
		log.Fatal(err)
	}
}

func run(moduleID string) error {
	cfg, err := core.NewCampaignSpecBuilder(
		core.WithExp("mitigation"),
		core.WithModule(moduleID),
		core.WithScale(4, 1, 1),
		core.WithOperatingPoint(50, 5*time.Millisecond),
	).StudyConfig()
	if err != nil {
		return err
	}
	study := core.NewStudy(cfg)
	if err := study.Run(context.Background()); err != nil {
		return err
	}
	rows, err := study.MitigationSummary()
	if err != nil {
		return err
	}
	fmt.Printf("flip survival per defense, %d victim rows per cell, %v hammer budget:\n\n",
		cfg.RowsPerRegion, cfg.Opts.Budget)
	if err := report.MitigationTable(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println("\n(The paper's characterization infrastructure disables REF and ECC" +
		" precisely because they mask circuit-level flips; here they are the subject.)")
	return nil
}
