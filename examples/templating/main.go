// templating profiles a simulated DIMM for exploitable bitflips (memory
// templating, the first stage of Flip Feng Shui-style attacks) and
// evaluates a page-table-entry corruption scenario. It shows the
// security consequence of the paper's Takeaway 1: the combined
// RowHammer+RowPress pattern reaches an exploitable flip in less wall
// time than the conventional patterns, shrinking the window defenses
// have to react.
//
// Run with:
//
//	go run ./examples/templating [module]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rowfuse/internal/attack"
	"rowfuse/internal/chipdb"
	"rowfuse/internal/core"
	"rowfuse/internal/device"
	"rowfuse/internal/pattern"
	"rowfuse/internal/timing"
)

func main() {
	moduleID := "S1"
	if len(os.Args) > 1 {
		moduleID = os.Args[1]
	}
	if err := run(moduleID); err != nil {
		log.Fatal(err)
	}
}

func run(moduleID string) error {
	mi, err := chipdb.ByID(moduleID)
	if err != nil {
		return err
	}
	params := device.DefaultParams()
	numRows, rowBytes := mi.Geometry()
	eng, err := core.NewAnalyticEngine(core.AnalyticConfig{
		Profile:  mi.Profile(params),
		Params:   params,
		NumRows:  numRows,
		RowBytes: rowBytes,
	})
	if err != nil {
		return err
	}

	rows := core.PaperRows(numRows, 150)
	layout := attack.DefaultPTE()
	fmt.Printf("module %s (%s): templating %d victim rows, x86-64 PTE layout\n\n", mi.ID, mi.Mfr, len(rows))
	fmt.Printf("%-24s %-10s %10s %12s %12s %16s\n",
		"pattern", "tAggON", "templates", "frame bits", "present bits", "fastest exploit")

	specs := []struct {
		kind  pattern.Kind
		aggOn time.Duration
	}{
		{pattern.DoubleSided, timing.TRAS},
		{pattern.DoubleSided, 636 * time.Nanosecond},
		{pattern.Combined, 636 * time.Nanosecond},
		{pattern.Combined, timing.AggOnTREFI},
	}
	var combined636, double636 time.Duration
	for _, sc := range specs {
		spec, err := pattern.New(sc.kind, sc.aggOn, timing.Default())
		if err != nil {
			return err
		}
		templates, err := attack.Scan(attack.ScanConfig{
			Engine: eng, Spec: spec, Rows: rows,
		})
		if err != nil {
			return err
		}
		rep := attack.EvaluatePTE(layout, templates)
		fastest := "none"
		if rep.FastestExploitable > 0 {
			fastest = rep.FastestExploitable.Round(time.Microsecond).String()
		}
		fmt.Printf("%-24s %-10v %10d %12d %12d %16s\n",
			spec.Kind, sc.aggOn, rep.Templates, rep.FrameBits, rep.PresentBits, fastest)
		if sc.aggOn == 636*time.Nanosecond {
			if sc.kind == pattern.Combined {
				combined636 = rep.FastestExploitable
			} else {
				double636 = rep.FastestExploitable
			}
		}
	}

	if combined636 > 0 && double636 > 0 {
		fmt.Printf("\nat tAggON = 636ns the combined pattern reaches an exploitable PTE flip %.0f%% faster than double-sided RowPress\n",
			100*(1-combined636.Seconds()/double636.Seconds()))
	}
	fmt.Println("(cf. the paper's Observation 1: up to 46.1% faster time to first bitflip)")
	return nil
}
